"""The unified collective pipeline: spec protocol and shared solution.

The paper's method is one pipeline regardless of the collective:

    build the steady-state LP  ->  solve it (exactly when possible)
    ->  post-process the rate flows  ->  reconstruct a periodic schedule
    ->  simulate and validate

A :class:`CollectiveSpec` packages the collective-specific plug-in points
of that pipeline — problem validation, LP builder, variable-name codec,
solution extraction, schedule reconstruction, simulator item semantics —
so the generic orchestrator (:func:`repro.collectives.solve_collective`)
can run any registered collective.  Adding a collective means writing one
spec subclass and registering it; see ``repro/collectives/reduce_scatter.py``
for a complete example and ROADMAP.md for the how-to.

:class:`CollectiveSolution` is the one solution type behind the historical
``ScatterSolution``/``ReduceSolution``/``GossipSolution``/``PrefixSolution``
names: rates (``send``), optional task rates (``cons``), optional path
decompositions (``paths``), exactness metadata, and shared
``edge_occupation()``/``verify()`` that dispatch through the spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.lp import LinearProgram, LPSolution
from repro.platform.graph import NodeId

if TYPE_CHECKING:  # flowclean sits under repro.core, whose package
    # __init__ imports the problem modules that subclass
    # CollectiveSolution — importing it eagerly here would be circular
    from repro.core.flowclean import FlowPass

Item = Hashable
EdgeKey = Tuple[NodeId, NodeId]


@dataclass
class CollectiveSolution:
    """Solved steady-state collective: throughput plus cleaned rates.

    ``send`` maps spec-defined keys (always starting with the edge
    ``(src, dst)``) to steady-state rates; ``cons`` maps task keys to task
    rates for computing collectives; ``paths`` holds per-commodity weighted
    path decompositions when the cleaning pipeline produced them.
    ``collective`` names the spec that built (and can interpret) this
    solution.
    """

    problem: object
    throughput: object
    send: Dict[tuple, object]
    lp_solution: LPSolution
    exact: bool
    paths: Optional[Dict[object, List[Tuple[List[NodeId], object]]]] = None
    cons: Optional[Dict[tuple, object]] = None
    trees: Optional[object] = None
    collective: str = ""

    @property
    def spec(self) -> "CollectiveSpec":
        from repro.collectives.registry import get_collective

        return get_collective(self.collective)

    def edge_occupation(self) -> Dict[EdgeKey, object]:
        """Busy fraction of every used edge: ``sum rate * unit_time``."""
        spec = self.spec
        occ: Dict[EdgeKey, object] = {}
        for key, f in self.send.items():
            e = spec.send_edge(key)
            occ[e] = occ.get(e, 0) + f * spec.send_unit_time(self.problem, key)
        return occ

    def verify(self, tol=0) -> List[str]:
        """Exact re-check of the collective's steady-state invariants on
        the cleaned rates; empty list == all hold."""
        return self.spec.verify(self, tol=tol)

    def alpha(self, node: NodeId) -> object:
        """Fraction of time ``node`` spends computing (0 when ``cons`` is
        empty — pure-communication collectives never compute)."""
        if not self.cons:
            return 0
        spec = self.spec
        return sum((r * spec.cons_unit_time(self.problem, key)
                    for key, r in self.cons.items()
                    if spec.cons_node(key) == node), 0)


@dataclass
class SimSemantics:
    """Simulator item semantics of one collective's schedules.

    ``supplies`` maps ``(node, item)`` to a stamped-instance factory,
    ``expected`` checks delivered payloads, ``combine`` is the binary
    operator for compute tasks (``None`` for pure communication).
    """

    supplies: Dict[Tuple[NodeId, Item], object]
    expected: Optional[object] = None
    combine: Optional[object] = None


class CollectiveSpec:
    """Plug-in points of the unified pipeline for one collective.

    Subclasses must set :attr:`name`, :attr:`title`, :attr:`problem_type`,
    :attr:`solution_type` and implement the LP/codec/verify hooks.  The
    extraction loop, schedule dispatch and CLI wiring are shared.
    """

    #: Registry key (CLI subcommand name).
    name: str = ""
    #: Human-readable description shown by ``repro collectives``.
    title: str = ""
    #: Problem dataclass this spec solves.
    problem_type: type = object
    #: Solution class :meth:`finalize` instantiates.
    solution_type: type = CollectiveSolution
    #: Whether :meth:`build_schedule` / :meth:`simulation` are implemented.
    has_schedule: bool = True
    #: Eligible for problem-type resolution.  Specs sharing another
    #: collective's problem type (prefix rides ReduceProblem) set this
    #: False and are only reachable by name — keeps resolution
    #: independent of registration/import order.
    resolve_by_type: bool = True

    # ------------------------------------------------------------------
    # problem / LP
    # ------------------------------------------------------------------
    def validate(self, problem) -> None:
        """Raise ``ValueError`` for ill-formed problems.  The problem
        constructors already validate; this re-checks the type."""
        if not isinstance(problem, self.problem_type):
            raise ValueError(
                f"{self.name} expects a {self.problem_type.__name__}, "
                f"got {type(problem).__name__}")

    def build_lp(self, problem) -> LinearProgram:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # variable-name codec + commodity structure
    # ------------------------------------------------------------------
    def commodities(self, problem) -> Sequence[object]:
        """Commodity keys whose flows are extracted and cleaned."""
        raise NotImplementedError

    def commodity_var(self, problem, commodity, i: NodeId, j: NodeId) -> str:
        """LP variable name of ``commodity``'s rate on edge ``(i, j)``."""
        raise NotImplementedError

    def commodity_endpoints(self, problem, commodity) -> Optional[Tuple[NodeId, NodeId]]:
        """``(source, sink)`` for routed commodities, ``None`` for
        interval-style commodities (many producers/consumers)."""
        return None

    def send_key(self, commodity, i: NodeId, j: NodeId) -> tuple:
        """Key of this commodity-on-edge rate in ``solution.send``."""
        raise NotImplementedError

    def send_edge(self, key: tuple) -> EdgeKey:
        """Edge of a ``send`` key (default: first two components)."""
        return (key[0], key[1])

    def send_unit_time(self, problem, key: tuple) -> object:
        """Edge occupation time of one unit of this rate."""
        raise NotImplementedError

    # task rates (computing collectives only)
    def cons_node(self, key: tuple) -> NodeId:
        return key[0]

    def cons_unit_time(self, problem, key: tuple) -> object:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # solution extraction
    # ------------------------------------------------------------------
    def default_passes(self) -> Tuple["FlowPass", ...]:
        """Flow post-processing pipeline (override per collective)."""
        from repro.core.flowclean import CleanCommodityPass, PruneEpsilonRatesPass

        return (PruneEpsilonRatesPass(), CleanCommodityPass())

    def extract(self, problem, lp: LinearProgram, sol: LPSolution,
                tol, passes: Sequence["FlowPass"]) -> CollectiveSolution:
        """Generic extraction: per commodity, gather the flow by variable
        name, run the pass pipeline, and assemble ``send``/``paths``."""
        from repro.core.flowclean import FlowContext, run_passes

        tp = sol.by_name("TP")
        g = problem.platform
        send: Dict[tuple, object] = {}
        paths: Dict[object, List[Tuple[List[NodeId], object]]] = {}
        for c in self.commodities(problem):
            flow: Dict[EdgeKey, object] = {}
            for e in g.edges():
                name = self.commodity_var(problem, c, e.src, e.dst)
                try:
                    var = lp.get(name)
                except KeyError:
                    continue
                f = sol.value(var)
                if f:
                    flow[(e.src, e.dst)] = f
            endpoints = self.commodity_endpoints(problem, c)
            src, sink = endpoints if endpoints else (None, None)
            ctx = FlowContext(commodity=c, flow=flow, source=src, sink=sink,
                              demand=tp, eps=tol)
            run_passes(passes, ctx)
            if ctx.paths is not None:
                paths[c] = ctx.paths
            for (i, j), f in ctx.flow.items():
                send[self.send_key(c, i, j)] = f
        return self.finalize(problem, tp, send, paths if paths else None,
                             lp, sol, tol)

    def finalize(self, problem, throughput, send, paths,
                 lp: LinearProgram, sol: LPSolution, tol) -> CollectiveSolution:
        """Build the solution object (override to extract task rates)."""
        return self.solution_type(problem=problem, throughput=throughput,
                                  send=send, paths=paths, lp_solution=sol,
                                  exact=sol.exact, collective=self.name)

    # ------------------------------------------------------------------
    # invariants / schedule / simulation
    # ------------------------------------------------------------------
    def verify(self, solution: CollectiveSolution, tol=0) -> List[str]:
        raise NotImplementedError

    def build_schedule(self, solution: CollectiveSolution):
        raise NotImplementedError(
            f"{self.name} has no schedule reconstruction")

    def simulation(self, schedule, problem, op=None) -> SimSemantics:
        """Item semantics for :func:`repro.sim.executor.simulate_collective`."""
        raise NotImplementedError(
            f"{self.name} has no simulator semantics")

    # ------------------------------------------------------------------
    # reporting / CLI
    # ------------------------------------------------------------------
    def rate_rows(self, solution: CollectiveSolution):
        """``(headers, rows)`` for the send-rates table."""
        rows = [(f"{k[0]} -> {k[1]}", self.format_commodity(k), v)
                for k, v in sorted(solution.send.items(), key=str)]
        return ["edge", "type", "rate"], rows

    def format_commodity(self, send_key: tuple) -> str:
        return str(send_key[2:])

    def add_arguments(self, parser) -> None:
        """Add collective-specific CLI options to a solve subcommand."""
        raise NotImplementedError

    def problem_from_args(self, platform, args):
        """Build the problem from parsed CLI arguments."""
        raise NotImplementedError

    def report(self, solution: CollectiveSolution) -> str:
        """CLI body printed after the throughput line."""
        from repro.viz.tables import rates_table

        return rates_table(solution)

    def tp_suffix(self, problem) -> str:
        """Extra text appended to the CLI throughput line."""
        return ""

    def ops_bound_factor(self, problem) -> int:
        """Completed-ops bound multiplier over ``TP * horizon``.

        ``SimulationResult.completed_ops`` sums independent delivery
        streams for computing collectives; specs with several TP-rate
        stream groups (reduce-scatter: one per block) override this so
        reported bounds match that counting."""
        return 1

    # shared simulator plumbing: stamped leaf-value supplies for
    # computing collectives (items tagged ("val", (j, j), <stream>))
    def _leaf_value_supplies(self, schedule, problem, op):
        items = set()
        for slot in schedule.slots:
            for tr in slot.transfers:
                items.add(tr.item)
        for _node, tasks in schedule.compute.items():
            for ct in tasks:
                items.add(ct.output)
                items.update(ct.inputs)
        supplies = {}
        for item in items:
            tag, interval = item[0], item[1]
            if tag == "val" and interval[0] == interval[1]:
                j = interval[0]
                supplies[(problem.owner(j), item)] = \
                    (lambda jj: (lambda seq: op.leaf(jj, seq)))(j)
        return supplies

    # shared port-capacity checks used by most verify() implementations
    def _port_violations(self, solution: CollectiveSolution, tol) -> List[str]:
        bad: List[str] = []
        occ = solution.edge_occupation()
        out_t: Dict[NodeId, object] = {}
        in_t: Dict[NodeId, object] = {}
        for (i, j), o in occ.items():
            out_t[i] = out_t.get(i, 0) + o
            in_t[j] = in_t.get(j, 0) + o
            if o > 1 + tol:
                bad.append(f"edge[{i}->{j}] occupation {o} > 1")
        for p, o in out_t.items():
            if o > 1 + tol:
                bad.append(f"out[{p}] {o} > 1")
        for p, o in in_t.items():
            if o > 1 + tol:
                bad.append(f"in[{p}] {o} > 1")
        return bad

    def __repr__(self) -> str:
        return f"<CollectiveSpec {self.name!r}>"
