"""Registry spec for the parallel-prefix extension (Section 6 outlook).

Prefix shares :class:`ReduceProblem` with the plain reduce, so type-based
resolution picks ``"reduce"`` first; request this spec by name
(``solve_collective(problem, collective="prefix")``).
"""

from __future__ import annotations

from typing import List

from repro.collectives.base import CollectiveSolution, CollectiveSpec
from repro.collectives.registry import register_collective
from repro.core import intervals as iv
from repro.core.flowclean import PruneEpsilonRatesPass
from repro.core.prefix import PrefixSolution, build_prefix_lp
from repro.core.reduce_op import ReduceProblem, _cons_name, _send_name


class PrefixSpec(CollectiveSpec):
    name = "prefix"
    title = "Parallel prefix — every rank receives its prefix v[0, i]"
    problem_type = ReduceProblem
    solution_type = PrefixSolution
    has_schedule = False
    resolve_by_type = False  # ReduceProblem belongs to "reduce"

    def build_lp(self, problem):
        return build_prefix_lp(problem)

    def commodities(self, problem):
        return iv.all_intervals(problem.n_values)

    def commodity_var(self, problem, commodity, i, j):
        return _send_name(i, j, commodity)

    def send_key(self, commodity, i, j):
        return (i, j, commodity)

    def send_unit_time(self, problem, key):
        i, j, interval = key
        return problem.size(interval) * problem.platform.cost(i, j)

    def cons_unit_time(self, problem, key):
        node, task = key
        return problem.task_time(node, task)

    def format_commodity(self, send_key):
        k, m = send_key[2]
        return f"v[{k},{m}]"

    def default_passes(self):
        # No source→sink cleaning (intervals are many-to-many) and no cycle
        # cancellation either: prefix flows may legitimately transit a
        # delivery node, and no downstream tree extraction requires
        # acyclicity yet.
        return (PruneEpsilonRatesPass(),)

    def finalize(self, problem, throughput, send, paths, lp, sol, tol):
        cons = {}
        for h in problem.compute_hosts():
            for t in iv.all_tasks(problem.n_values):
                r = sol.value(lp.get(_cons_name(h, t)))
                if r > tol:
                    cons[(h, t)] = r
        return self.solution_type(problem=problem, throughput=throughput,
                                  send=send, cons=cons, lp_solution=sol,
                                  exact=sol.exact, collective=self.name)

    def verify(self, solution: CollectiveSolution, tol=0) -> List[str]:
        """Port/alpha capacities plus the delivery-aware conservation law.

        At the owner of rank ``m``, the prefix ``v[0, m]`` must be absorbed
        at exactly the common throughput ``TP``; everywhere else (except
        fresh leaves) inflow + production balances outflow + consumption.
        """
        bad = self._port_violations(solution, tol)
        p_ = solution.problem
        n = p_.n_values
        for h in p_.compute_hosts():
            a = solution.alpha(h)
            if a > 1 + tol:
                bad.append(f"alpha[{h}] {a} > 1")
        for node in p_.platform.nodes():
            for interval in iv.all_intervals(n):
                if iv.is_leaf(interval) and p_.owner(interval[0]) == node:
                    continue
                inflow = sum(f for (i, j, vv), f in solution.send.items()
                             if j == node and vv == interval)
                outflow = sum(f for (i, j, vv), f in solution.send.items()
                              if i == node and vv == interval)
                produced = sum(r for (h, t), r in solution.cons.items()
                               if h == node and iv.task_output(t) == interval)
                consumed = sum(r for (h, t), r in solution.cons.items()
                               if h == node and interval in iv.task_inputs(t))
                absorbed = 0
                k, m = interval
                if k == 0 and m >= 1 and p_.owner(m) == node:
                    absorbed = solution.throughput
                lhs, rhs = inflow + produced, outflow + consumed + absorbed
                if abs(lhs - rhs) > tol:
                    bad.append(f"conserve[{node},v{interval}] {lhs} != {rhs}")
        return bad

    def add_arguments(self, parser) -> None:
        parser.add_argument("--participants", required=True,
                            help="comma-separated node ids in logical (⊕) order")
        parser.add_argument("--msg-size", type=int, default=1, dest="msg_size")
        parser.add_argument("--task-work", type=int, default=1,
                            dest="task_work")

    def problem_from_args(self, platform, args):
        from repro.cli import parse_nodes

        participants = parse_nodes(args.participants)
        # every participant is a target for its own prefix; the problem's
        # single target field is ignored by the prefix LP
        return ReduceProblem(platform, participants, participants[0],
                             msg_size=args.msg_size, task_work=args.task_work)

    def conformance_problem(self, platform, hosts, rng):
        if len(hosts) < 2:
            return None
        parts = hosts[:3]
        return ReduceProblem(platform, parts, parts[0])


PREFIX = register_collective(PrefixSpec())
