"""Registry spec for the Series of All-reduces (composite).

Reduce-scatter ∘ all-gather: the canonical decomposition (Träff 2024).
Two composition modes are meaningful and both are supported per solve:

- ``"sequential"`` (the default): each stage solved on its own LP, the
  composed throughput the harmonic combination
  ``1/(1/TP_rs + 1/TP_ag)``, the schedule the two stage schedules back
  to back.
- ``"pipelined"``: one joint LP runs both stages concurrently at a
  single common ``TP`` over the shared one-port/alpha capacities, with
  :meth:`AllReduceSpec.chain_constraints` coupling the stages — each
  all-gather broadcast's source outflow is bounded by the reduce-scatter
  stage's delivery rate of that block, so the redistribution can never
  outpace the reduction.  Since the phase-scaled sequential solution is
  feasible for the joint LP, ``TP_pipelined >= TP_sequential`` always,
  and the bound is strict whenever the phases stress different
  resources (e.g. a compute-bound reduce-scatter overlapping a
  link-bound all-gather).  The pipelined schedule superposes both stage
  bundles in one period, retimed so reduced blocks land before they are
  re-broadcast, and the simulator credit-gates every all-gather source
  on actual reduce-scatter deliveries
  (:meth:`AllReduceSpec.chain_links`).

In either mode the simulator is chained so the all-gather stage
redistributes exactly the values the reduce-scatter stage produces:
every delivered block must equal the full non-commutative reduction.
"""

from __future__ import annotations

from repro.collectives.base import ChainRow, CompositeCollectiveSpec, SimSemantics
from repro.collectives.registry import register_collective
from repro.core import intervals as iv
from repro.core.allgather import AllGatherProblem
from repro.core.allreduce import AllReduceProblem
from repro.core.broadcast import _fvar
from repro.core.reduce_scatter import ReduceScatterProblem, _cons_name, _send_name
from repro.sim.operators import SeqConcat


class AllReduceSpec(CompositeCollectiveSpec):
    name = "all-reduce"
    title = "Series of All-reduces — reduce-scatter then all-gather (sequential or pipelined composition)"
    problem_type = AllReduceProblem
    mode = "sequential"

    def stages(self, problem):
        return [
            ("reduce-scatter",
             ReduceScatterProblem(problem.platform, problem.participants,
                                  msg_size=problem.msg_size,
                                  task_work=problem.task_work,
                                  task_time_fn=problem.task_time_fn)),
            ("all-gather",
             AllGatherProblem(problem.platform, problem.participants,
                              msg_size=problem.msg_size)),
        ]

    # ------------------------------------------------- pipelined chaining
    def chain_constraints(self, problem, stage_lps):
        """Per (block, target) precedence rows for the pipelined joint LP.

        The all-gather stage's broadcast of block ``b`` sources from the
        reduce-scatter stage's block-``b`` sink: for every broadcast
        target ``t``, the gross flow the source emits for ``t`` may not
        exceed the rate reduced block ``b`` becomes available there
        (arrivals of ``v[0,n-1]`` plus local final tasks).  At the joint
        optimum both sides equal ``TP`` — the rows cut only source-cycle
        vertices, never the optimum (a cycle-cancelled optimal point
        always satisfies them with equality).
        """
        g = problem.platform
        n = problem.n_values
        full = iv.full_interval(n)
        rs_lp, ag_lp = stage_lps
        rows = []
        for b, src in enumerate(problem.participants):
            # production side: the SSRS delivery expression of block b
            produce = []
            for q in g.predecessors(src):
                name = _send_name(q, src, b, full)
                if _has_var(rs_lp, name):
                    produce.append((0, name, -1))
            for t in iv.tasks_producing(full):
                name = _cons_name(src, b, t)
                if _has_var(rs_lp, name):
                    produce.append((0, name, -1))
            # consumption side: block b's broadcast stage is the inner
            # all-gather composite's stage b, so its variables carry the
            # inner `s{b}:` prefix inside the all-gather joint LP
            for tgt in problem.participants:
                if tgt == src:
                    continue
                consume = []
                for q in g.successors(src):
                    name = f"s{b}:{_fvar(src, q, tgt)}"
                    if _has_var(ag_lp, name):
                        consume.append((1, name, 1))
                if consume and produce:
                    rows.append(ChainRow(name=f"chain[b{b},m{tgt}]",
                                         terms=tuple(consume + produce)))
        return tuple(rows)

    def chain_links(self, solution):
        """Item-level chain contracts for the pipelined schedule/simulator.

        Block ``b``'s reduce-scatter deliveries (one per extracted
        reduction tree) mint the credits that block ``b``'s broadcast
        arborescence roots spend — one credit per operation per
        arborescence stream, sibling root edges of one arborescence
        drawing the same operation for free.
        """
        from repro.core.schedule import ChainLink, tag_item

        rs, ag = solution.stage_solutions
        problem = solution.problem
        full = iv.full_interval(problem.n_values)
        rs_trees = rs.extract()
        links = []
        for b, src in enumerate(problem.participants):
            produced = tuple(tag_item(0, ("val", full, (b, r)))
                             for r in range(len(rs_trees.get(b, ()))))
            consumed = []
            for r2, arb in enumerate(ag.stage_solutions[b].arborescences()):
                for (i, j) in arb.edges:
                    if i == src:
                        consumed.append(
                            (tag_item(1, tag_item(b, ("slc", r2, j))),
                             (b, r2)))
            if produced and consumed:
                links.append(ChainLink(label=f"block{b}", produced=produced,
                                       consumer=src,
                                       consumed=tuple(consumed)))
        return tuple(links)

    def chain_stage(self, k, sem, stage_problem, op) -> SimSemantics:
        """Feed the reduced blocks into the redistribution stage.

        The reduce-scatter stage leaves participant ``b`` holding block
        ``b`` — the full non-commutative reduction of operation ``seq``'s
        fragments.  Its value is exactly ``op.expected(n, seq)``, so the
        all-gather stage's broadcast sources supply that value and every
        all-gather delivery is checked against it: the simulation proves
        end-to-end that what reaches every participant *is* the reduction.
        (In pipelined mode those supplies are additionally credit-gated by
        :meth:`chain_links`, so nothing is redistributed before the
        reduce-scatter stage actually delivered it.)
        """
        if k != 1:
            return sem
        op = op or SeqConcat
        n = stage_problem.n_values
        reduced = lambda seq: op.expected(n, seq)  # noqa: E731
        return SimSemantics(
            supplies={key: (lambda seq: reduced(seq))
                      for key in sem.supplies},
            expected=lambda item, seq: reduced(seq),
            combine=sem.combine)

    # ------------------------------------------------------------ CLI
    def add_arguments(self, parser) -> None:
        parser.add_argument("--participants", required=True,
                            help="comma-separated node ids in logical (⊕) "
                                 "order")
        parser.add_argument("--msg-size", type=int, default=1,
                            dest="msg_size")
        parser.add_argument("--task-work", type=int, default=1,
                            dest="task_work")

    def problem_from_args(self, platform, args):
        from repro.cli import parse_nodes

        return AllReduceProblem(platform, parse_nodes(args.participants),
                                msg_size=args.msg_size,
                                task_work=args.task_work)

    # ---------------------------------------------------- conformance
    def conformance_problem(self, platform, hosts, rng):
        if len(hosts) < 2:
            return None
        # the SSRS stage LP grows ~n^4: keep conformance instances small
        return AllReduceProblem(platform, hosts[:3])


def _has_var(lp, name: str) -> bool:
    try:
        lp.get(name)
        return True
    except KeyError:
        return False


ALL_REDUCE = register_collective(AllReduceSpec())
