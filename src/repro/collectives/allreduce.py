"""Registry spec for the Series of All-reduces (sequential composite).

Reduce-scatter ∘ all-gather: the canonical decomposition (Träff 2024) as
a sequential composite — each stage solved on its own LP, the composed
throughput the harmonic combination of the stage throughputs, the
schedule the two stage schedules back to back, and the simulator chained
so the all-gather stage redistributes exactly the values the
reduce-scatter stage produces (every delivered block must equal the full
non-commutative reduction).
"""

from __future__ import annotations

from repro.collectives.base import CompositeCollectiveSpec, SimSemantics
from repro.collectives.registry import register_collective
from repro.core.allgather import AllGatherProblem
from repro.core.allreduce import AllReduceProblem
from repro.core.reduce_scatter import ReduceScatterProblem
from repro.sim.operators import SeqConcat


class AllReduceSpec(CompositeCollectiveSpec):
    name = "all-reduce"
    title = "Series of All-reduces — reduce-scatter then all-gather (sequential composition)"
    problem_type = AllReduceProblem
    mode = "sequential"

    def stages(self, problem):
        return [
            ("reduce-scatter",
             ReduceScatterProblem(problem.platform, problem.participants,
                                  msg_size=problem.msg_size,
                                  task_work=problem.task_work,
                                  task_time_fn=problem.task_time_fn)),
            ("all-gather",
             AllGatherProblem(problem.platform, problem.participants,
                              msg_size=problem.msg_size)),
        ]

    def chain_stage(self, k, sem, stage_problem, op) -> SimSemantics:
        """Feed the reduced blocks into the redistribution stage.

        The reduce-scatter stage leaves participant ``b`` holding block
        ``b`` — the full non-commutative reduction of operation ``seq``'s
        fragments.  Its value is exactly ``op.expected(n, seq)``, so the
        all-gather stage's broadcast sources supply that value and every
        all-gather delivery is checked against it: the simulation proves
        end-to-end that what reaches every participant *is* the reduction.
        """
        if k != 1:
            return sem
        op = op or SeqConcat
        n = stage_problem.n_values
        reduced = lambda seq: op.expected(n, seq)  # noqa: E731
        return SimSemantics(
            supplies={key: (lambda seq: reduced(seq))
                      for key in sem.supplies},
            expected=lambda item, seq: reduced(seq),
            combine=sem.combine)

    # ------------------------------------------------------------ CLI
    def add_arguments(self, parser) -> None:
        parser.add_argument("--participants", required=True,
                            help="comma-separated node ids in logical (⊕) "
                                 "order")
        parser.add_argument("--msg-size", type=int, default=1,
                            dest="msg_size")
        parser.add_argument("--task-work", type=int, default=1,
                            dest="task_work")

    def problem_from_args(self, platform, args):
        from repro.cli import parse_nodes

        return AllReduceProblem(platform, parse_nodes(args.participants),
                                msg_size=args.msg_size,
                                task_work=args.task_work)


ALL_REDUCE = register_collective(AllReduceSpec())
