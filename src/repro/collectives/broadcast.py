"""Registry spec for the Series of Broadcasts (content-divisible flows).

The LP, problem and solution live in :mod:`repro.core.broadcast`; the
schedule routes message *slices* along the weighted arborescences packed
from the content rates (:mod:`repro.core.arborescence`).  Slice ``r``'s
item on a tree edge ``(i, j)`` is ``("slc", r, j)`` — destination-tagged so
each hop has its own FIFO — and the schedule's ``replicas`` map fans a
landed slice out to the node's children (and to its own delivery token
``("dlv", r, node)`` when the node is a target).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.collectives.base import CollectiveSolution, CollectiveSpec, SimSemantics
from repro.collectives.registry import register_collective
from repro.core.broadcast import (
    BroadcastProblem,
    BroadcastSolution,
    build_broadcast_lp,
    _fvar,
)
from repro.core.schedule import RateBundle
from repro.platform.graph import NodeId


class BroadcastSpec(CollectiveSpec):
    name = "broadcast"
    title = "Series of Broadcasts — one source streams the same message to every target (SSB)"
    problem_type = BroadcastProblem
    solution_type = BroadcastSolution
    delivery_mode = "sum"  # arborescence slices are independent streams

    # ------------------------------------------------------------- LP
    def build_lp(self, problem):
        return build_broadcast_lp(problem)

    # ---------------------------------------------------------- codec
    def commodities(self, problem):
        return list(problem.targets)

    def commodity_var(self, problem, commodity, i, j):
        return _fvar(i, j, commodity)

    def commodity_endpoints(self, problem, commodity) -> Optional[Tuple[NodeId, NodeId]]:
        return (problem.source, commodity)

    def send_key(self, commodity, i, j):
        return (i, j, commodity)

    def send_unit_time(self, problem, key):
        # send keys of the *finalized* solution are bare edges carrying
        # content; per-target flows live in ``solution.flows``
        return problem.msg_size * problem.platform.cost(key[0], key[1])

    def format_commodity(self, send_key):
        return "content"

    # ----------------------------------------------------- extraction
    def finalize(self, problem, throughput, send, paths, lp, sol, tol):
        """Fold the cleaned per-target flows into per-edge content.

        The content a schedule must ship on an edge is the *maximum* of
        the per-target flows crossing it (shared bytes), never more than
        the LP's ``content`` variable — so occupation can only drop.
        """
        flows = {t: {} for t in problem.targets}
        for (i, j, t), f in send.items():
            flows[t][(i, j)] = f
        content = {}
        for fl in flows.values():
            for e, f in fl.items():
                if f > content.get(e, 0):
                    content[e] = f
        return self.solution_type(problem=problem, throughput=throughput,
                                  send=content, paths=paths, flows=flows,
                                  lp_solution=sol, exact=sol.exact,
                                  collective=self.name)

    # ----------------------------------------------------- invariants
    def verify(self, solution: CollectiveSolution, tol=0) -> List[str]:
        problem = solution.problem
        g = problem.platform
        bad = self._port_violations(solution, tol)
        for t in problem.targets:
            flow = solution.flows.get(t, {})
            for e, f in flow.items():
                if f > solution.send.get(e, 0) + tol:
                    bad.append(f"content[{e[0]}->{e[1]},m{t}] flow {f} "
                               f"exceeds content {solution.send.get(e, 0)}")
            for p in g.nodes():
                inflow = sum(f for (i, j), f in flow.items() if j == p)
                outflow = sum(f for (i, j), f in flow.items() if i == p)
                if p == problem.source:
                    continue
                if p == t:
                    if abs(inflow - solution.throughput) > tol:
                        bad.append(f"throughput[m{t}] {inflow} != "
                                   f"{solution.throughput}")
                    if outflow > tol:
                        bad.append(f"reemit[{p},m{t}] {outflow} > 0")
                elif abs(inflow - outflow) > tol:
                    bad.append(f"conserve[{p},m{t}] in {inflow} != out "
                               f"{outflow}")
        return bad

    # ------------------------------------------------------- schedule
    def rate_bundle(self, solution: CollectiveSolution) -> RateBundle:
        problem = solution.problem
        g = problem.platform
        rates = {}
        replicas = {}
        deliveries = {}
        targets = set(problem.targets)
        for r, arb in enumerate(solution.arborescences()):
            w = arb.weight
            children = arb.children()
            for (i, j) in arb.edges:
                rates[(i, j, ("slc", r, j))] = \
                    (w, problem.msg_size * g.cost(i, j))
            for v in arb.nodes():
                if v == problem.source:
                    continue
                reps = tuple(("slc", r, c) for c in children.get(v, ()))
                if v in targets:
                    reps = reps + (("dlv", r, v),)
                replicas[(v, ("slc", r, v))] = reps
            for t in problem.targets:
                deliveries[("dlv", r, t)] = t
        return RateBundle(rates=rates, deliveries=deliveries,
                          replicas=replicas)

    def build_schedule(self, solution: CollectiveSolution):
        from repro.core.schedule import schedule_from_rates

        if not solution.exact:
            raise ValueError("schedule construction needs exact rational "
                             "rates; solve with backend='exact' or "
                             "rationalize first")
        bundle = self.rate_bundle(solution)
        return schedule_from_rates(
            bundle.rates, throughput=solution.throughput,
            deliveries=bundle.deliveries,
            name=f"broadcast({solution.problem.platform.name})",
            replicas=bundle.replicas, delivery_mode=self.delivery_mode)

    # ------------------------------------------------------ simulator
    def simulation(self, schedule, problem, op=None) -> SimSemantics:
        supplies = {}
        for slot in schedule.slots:
            for tr in slot.transfers:
                if tr.src == problem.source and tr.item[0] == "slc":
                    # slice r enters the platform at the source; every
                    # root edge ships the same stamped content copy
                    r = tr.item[1]
                    supplies[(problem.source, tr.item)] = \
                        (lambda rr: (lambda seq: ("bc", rr, seq)))(r)
        return SimSemantics(
            supplies=supplies,
            expected=lambda item, seq: ("bc", item[1], seq))

    def ops_bound_factor(self, problem) -> int:
        return len(problem.targets)  # one slice-stream group per target

    def tp_suffix(self, problem, solution=None) -> str:
        return f" ({len(problem.targets)} targets share content)"

    # ------------------------------------------------------------ CLI
    def add_arguments(self, parser) -> None:
        parser.add_argument("--source", required=True)
        parser.add_argument("--targets", required=True,
                            help="comma-separated node ids")
        parser.add_argument("--msg-size", type=int, default=1,
                            dest="msg_size")

    def problem_from_args(self, platform, args):
        from repro.cli import parse_node, parse_nodes

        return BroadcastProblem(platform, parse_node(args.source),
                                parse_nodes(args.targets),
                                msg_size=args.msg_size)

    def report(self, solution: CollectiveSolution) -> str:
        from repro.viz.tables import rates_table

        lines = [rates_table(solution, title="content rates")]
        if solution.exact:
            lines += [a.describe() for a in solution.arborescences()]
        return "\n".join(lines)

    def conformance_problem(self, platform, hosts, rng):
        if len(hosts) < 2:
            return None
        src = hosts[0]
        return BroadcastProblem(platform, src,
                                [h for h in hosts[1:5] if h != src])


BROADCAST = register_collective(BroadcastSpec())
