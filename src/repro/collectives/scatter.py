"""Registry spec for the Series of Scatters (``SSSP(G)``, Section 3)."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.collectives.base import CollectiveSolution, CollectiveSpec, SimSemantics
from repro.collectives.registry import register_collective
from repro.core.scatter import ScatterProblem, ScatterSolution, build_scatter_lp, _svar
from repro.platform.graph import NodeId


class ScatterSpec(CollectiveSpec):
    name = "scatter"
    title = "Series of Scatters — one source streams a distinct message to every target (SSSP)"
    problem_type = ScatterProblem
    solution_type = ScatterSolution

    # ------------------------------------------------------------- LP
    def build_lp(self, problem):
        return build_scatter_lp(problem)

    # ---------------------------------------------------------- codec
    def commodities(self, problem):
        return list(problem.targets)

    def commodity_var(self, problem, commodity, i, j):
        return _svar(i, j, commodity)

    def commodity_endpoints(self, problem, commodity) -> Optional[Tuple[NodeId, NodeId]]:
        return (problem.source, commodity)

    def send_key(self, commodity, i, j):
        return (i, j, commodity)

    def send_unit_time(self, problem, key):
        return problem.platform.cost(key[0], key[1])

    def format_commodity(self, send_key):
        return f"m[{send_key[2]}]"

    # extraction: base default_passes (prune -> clean-commodity) applies

    # ----------------------------------------------------- invariants
    def verify(self, solution: CollectiveSolution, tol=0) -> List[str]:
        problem = solution.problem
        g = problem.platform
        bad = self._port_violations(solution, tol)
        for k in problem.targets:
            for p in g.nodes():
                inflow = sum(f for (i, j, kk), f in solution.send.items()
                             if j == p and kk == k)
                outflow = sum(f for (i, j, kk), f in solution.send.items()
                              if i == p and kk == k)
                if p == problem.source:
                    continue
                if p == k:
                    if abs(inflow - solution.throughput) > tol:
                        bad.append(
                            f"throughput[m{k}] {inflow} != {solution.throughput}")
                    if outflow > tol:
                        bad.append(f"reemit[{p},m{k}] {outflow} > 0")
                elif abs(inflow - outflow) > tol:
                    bad.append(f"conserve[{p},m{k}] in {inflow} != out {outflow}")
        return bad

    # ------------------------------------------------------- schedule
    def rate_bundle(self, solution: CollectiveSolution):
        from repro.core.schedule import RateBundle

        g = solution.problem.platform
        rates = {}
        for (i, j, k), f in solution.send.items():
            rates[(i, j, ("msg", k))] = (f, g.cost(i, j))
        deliveries = {("msg", k): k for k in solution.problem.targets}
        return RateBundle(rates=rates, deliveries=deliveries)

    def build_schedule(self, solution: CollectiveSolution):
        from repro.core.schedule import schedule_from_rates

        if not solution.exact:
            raise ValueError(
                "schedule construction needs exact rational rates; solve with "
                "backend='exact' or rationalize first (see repro.lp.rationalize)")
        bundle = self.rate_bundle(solution)
        return schedule_from_rates(
            bundle.rates, throughput=solution.throughput,
            deliveries=bundle.deliveries,
            name=f"scatter({solution.problem.platform.name})")

    # ------------------------------------------------------ simulator
    def simulation(self, schedule, problem, op=None) -> SimSemantics:
        supplies = {}
        for item in schedule.deliveries:
            # item == ("msg", k): infinite supply at the source
            supplies[(problem.source, item)] = \
                (lambda it: (lambda seq: (it, seq)))(item)
        return SimSemantics(supplies=supplies,
                            expected=lambda item, seq: (item, seq))

    # ------------------------------------------------------------ CLI
    def add_arguments(self, parser) -> None:
        parser.add_argument("--source", required=True)
        parser.add_argument("--targets", required=True,
                            help="comma-separated node ids")

    def problem_from_args(self, platform, args):
        from repro.cli import parse_node, parse_nodes

        return ScatterProblem(platform, parse_node(args.source),
                              parse_nodes(args.targets))

    def conformance_problem(self, platform, hosts, rng):
        if len(hosts) < 2:
            return None
        src = hosts[0]
        return ScatterProblem(platform, src,
                              [h for h in hosts[1:5] if h != src])


SCATTER = register_collective(ScatterSpec())
