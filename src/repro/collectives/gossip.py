"""Registry spec for the Series of Gossips (``SSPA2A(G)``, Section 3.5)."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.collectives.base import CollectiveSolution, CollectiveSpec, SimSemantics
from repro.collectives.registry import register_collective
from repro.core.gossip import GossipProblem, GossipSolution, build_gossip_lp, _gvar
from repro.platform.graph import NodeId


class GossipSpec(CollectiveSpec):
    name = "gossip"
    title = "Series of Gossips — personalized all-to-all (SSPA2A)"
    problem_type = GossipProblem
    solution_type = GossipSolution

    def build_lp(self, problem):
        return build_gossip_lp(problem)

    def commodities(self, problem):
        return problem.pairs()

    def commodity_var(self, problem, commodity, i, j):
        k, l = commodity
        return _gvar(i, j, k, l)

    def commodity_endpoints(self, problem, commodity) -> Optional[Tuple[NodeId, NodeId]]:
        return commodity  # (emitting source, destination)

    def send_key(self, commodity, i, j):
        k, l = commodity
        return (i, j, k, l)

    def send_unit_time(self, problem, key):
        return problem.platform.cost(key[0], key[1])

    def format_commodity(self, send_key):
        return f"m({send_key[2]},{send_key[3]})"

    # extraction: base default_passes (prune -> clean-commodity) applies

    def verify(self, solution: CollectiveSolution, tol=0) -> List[str]:
        bad = self._port_violations(solution, tol)
        for (k, l) in solution.problem.pairs():
            delivered = sum(f for (i, j, kk, ll), f in solution.send.items()
                            if j == l and (kk, ll) == (k, l))
            if abs(delivered - solution.throughput) > tol:
                bad.append(
                    f"throughput[m({k},{l})] {delivered} != {solution.throughput}")
        return bad

    def rate_bundle(self, solution: CollectiveSolution):
        from repro.core.schedule import RateBundle

        g = solution.problem.platform
        rates = {}
        for (i, j, k, l), f in solution.send.items():
            rates[(i, j, ("msg", k, l))] = (f, g.cost(i, j))
        deliveries = {("msg", k, l): l for (k, l) in solution.problem.pairs()}
        return RateBundle(rates=rates, deliveries=deliveries)

    def build_schedule(self, solution: CollectiveSolution):
        from repro.core.schedule import schedule_from_rates

        if not solution.exact:
            raise ValueError("schedule construction needs exact rational rates")
        bundle = self.rate_bundle(solution)
        return schedule_from_rates(
            bundle.rates, throughput=solution.throughput,
            deliveries=bundle.deliveries,
            name=f"gossip({solution.problem.platform.name})")

    def simulation(self, schedule, problem, op=None) -> SimSemantics:
        supplies = {}
        for item in schedule.deliveries:
            _tag, k, _l = item  # ("msg", k, l)
            supplies[(k, item)] = (lambda it: (lambda seq: (it, seq)))(item)
        return SimSemantics(supplies=supplies,
                            expected=lambda item, seq: (item, seq))

    def tp_suffix(self, problem, solution=None) -> str:
        return f" ({len(problem.pairs())} message types)"

    def add_arguments(self, parser) -> None:
        parser.add_argument("--sources", required=True,
                            help="comma-separated node ids")
        parser.add_argument("--targets", required=True,
                            help="comma-separated node ids")

    def problem_from_args(self, platform, args):
        from repro.cli import parse_nodes

        return GossipProblem(platform, parse_nodes(args.sources),
                             parse_nodes(args.targets))

    def conformance_problem(self, platform, hosts, rng):
        if len(hosts) < 2:
            return None
        return GossipProblem(platform, hosts[:2], hosts[:3])


GOSSIP = register_collective(GossipSpec())
