"""Unified collective pipeline: registry, specs, and the orchestrator.

One pipeline serves every steady-state collective::

    problem --spec.build_lp--> LP --lp.solve--> optimum
            --spec.extract + flow passes--> CollectiveSolution
            --spec.build_schedule--> PeriodicSchedule
            --spec.simulation--> simulator semantics

:func:`solve_collective` runs the first half, :func:`schedule_collective`
the schedule step, and :func:`repro.sim.executor.simulate_collective` the
replay.  The classic per-collective entry points (``solve_scatter`` &
co.) are thin wrappers kept for compatibility.

The built-in specs (scatter, reduce, gossip, prefix, reduce-scatter,
broadcast, all-gather, all-reduce) self-register on first registry
access — lazily, because the core problem modules import
:mod:`repro.collectives.base` for the shared solution class and an eager
import here would be circular.  A bare ``ReduceProblem`` always resolves
to the plain reduce — prefix shares that problem type but opts out of
type resolution (``resolve_by_type = False``), so request
``collective="prefix"`` explicitly; among type-eligible specs the
``register_collective(priority=...)`` argument settles precedence.

:class:`CompositeCollectiveSpec` is the composition layer: all-gather is
a *joint* composite (one broadcast stage per block over shared
capacities) and all-reduce a *sequential* one (reduce-scatter then
all-gather, harmonic throughput composition) that can also be solved
``mode="pipelined"`` — one joint LP overlapping both phases with
cross-stage chain rows, never below the harmonic bound — see
:mod:`repro.collectives.base`.
"""

from repro.collectives.base import (
    COMPOSITION_MODES,
    ChainRow,
    CollectiveSolution,
    CollectiveSpec,
    CompositeCollectiveSpec,
    CompositeSolution,
    SimSemantics,
    compose_joint_lp,
)
from repro.collectives.registry import (
    available_collectives,
    get_collective,
    register_collective,
    resolve_collective,
    unregister_collective,
)
from repro.collectives.orchestrator import schedule_collective, solve_collective

__all__ = [
    "COMPOSITION_MODES",
    "ChainRow",
    "CollectiveSolution",
    "CollectiveSpec",
    "CompositeCollectiveSpec",
    "CompositeSolution",
    "SimSemantics",
    "compose_joint_lp",
    "available_collectives",
    "get_collective",
    "register_collective",
    "resolve_collective",
    "unregister_collective",
    "schedule_collective",
    "solve_collective",
]
