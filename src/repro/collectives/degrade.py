"""Graceful degradation: shrink a collective to the surviving node set.

When a platform perturbation removes nodes or disconnects part of the
graph, the original problem may be unsolvable — a scatter target that no
longer exists, an all-gather participant cut off from the rest.  Rather
than failing, :func:`degrade_problem` rebuilds the *largest still-valid
instance* of the same collective on the perturbed platform and reports
exactly what was sacrificed, so callers (``solve_collective(...,
on_infeasible="degrade")``, :func:`repro.lp.resolve.replan`) can trade
coverage for liveness explicitly.

The shrink rule is reachability-based and deterministic:

- the *root* of a rooted collective (scatter/broadcast ``source``,
  reduce ``target``) must survive — losing it is not degradable;
- ``targets`` keep only surviving nodes reachable from the source (for
  gossip: reachable from every surviving source);
- ``participants`` of a rooted reduce keep only nodes that can still
  reach the target; root-less all-to-all collectives keep the
  participants mutually connected with the first survivor (its strongly
  connected component), so "reach everyone and be reached" still holds.

Reachability pruning is a *best-effort* pre-filter: a problem that is
still infeasible afterwards (e.g. a prefix collective whose return path
died) raises from validation or the LP as before.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Hashable, List, Optional, Tuple

from repro.platform.graph import PlatformGraph

NodeId = Hashable


class DegradationError(ValueError):
    """The collective cannot be shrunk to a valid surviving instance."""


def degrade_problem(problem, platform: Optional[PlatformGraph] = None,
                    policy: str = "degrade"):
    """Rebuild ``problem`` on ``platform`` over the surviving node set.

    Parameters
    ----------
    problem:
        Any registered collective problem (frozen dataclass with a
        ``platform`` field plus ``source``/``target``/``targets``/
        ``sources``/``participants`` as applicable).
    platform:
        The (perturbed) platform to rebuild on; defaults to the
        problem's own platform (useful to re-check an existing instance).
    policy:
        ``"degrade"`` — shrink and report; ``"error"`` — raise
        :class:`DegradationError` if *anything* would be sacrificed.

    Returns ``(new_problem, sacrificed)`` where ``sacrificed`` is the
    tuple of dropped node ids (empty when the collective survives
    whole).  Raises :class:`DegradationError` when no valid instance
    remains (dead root, no surviving target, ...).
    """
    if policy not in ("degrade", "error"):
        raise ValueError(f"unknown degradation policy {policy!r}")
    g = platform if platform is not None else problem.platform
    sacrificed: List[NodeId] = []
    changes = {"platform": g}

    source = getattr(problem, "source", None)
    target = getattr(problem, "target", None)
    root = source if source is not None else target
    if root is not None and root not in g:
        raise DegradationError(
            f"root node {root!r} did not survive the perturbation; "
            f"the collective cannot degrade around a lost root")

    sources = getattr(problem, "sources", None)
    if sources is not None:
        keep_sources = [s for s in sources if s in g]
        if not keep_sources:
            raise DegradationError("no gossip source survives")
        if len(keep_sources) != len(sources):
            sacrificed.extend(s for s in sources if s not in g)
            changes["sources"] = keep_sources

    targets = getattr(problem, "targets", None)
    if targets is not None:
        if source is not None:
            reach = g.reachable_from(source)
        elif sources is not None:
            reach = None
            for s in changes.get("sources", sources):
                r = g.reachable_from(s)
                reach = r if reach is None else reach & r
            reach = reach or set()
        else:
            reach = set(g.nodes())
        keep = [t for t in targets if t in g and t in reach]
        lost = [t for t in targets if t not in keep]
        if lost:
            if not keep:
                raise DegradationError("no target survives the perturbation")
            sacrificed.extend(lost)
            changes["targets"] = keep

    participants = getattr(problem, "participants", None)
    if participants is not None:
        alive = [p for p in participants if p in g]
        if not alive:
            raise DegradationError("no participant survives the perturbation")
        if target is not None:
            # rooted reduce/prefix: a participant must still reach the root
            up = g.reversed().reachable_from(target)
            keep = [p for p in alive if p in up]
        else:
            # all-to-all: survivors must reach each other both ways; keep
            # the first survivor's strongly connected component
            anchor = alive[0]
            down = g.reachable_from(anchor)
            up = g.reversed().reachable_from(anchor)
            keep = [p for p in alive if p in down and p in up]
        lost = [p for p in participants if p not in keep]
        if lost:
            if not keep:
                raise DegradationError(
                    "no participant survives the perturbation")
            sacrificed.extend(lost)
            changes["participants"] = keep

    try:
        new_problem = dc_replace(problem, **changes)
    except (TypeError, ValueError) as exc:
        raise DegradationError(
            f"surviving instance is not a valid {type(problem).__name__}: "
            f"{exc}") from exc
    sacrificed_t: Tuple[NodeId, ...] = tuple(sacrificed)
    if policy == "error" and sacrificed_t:
        raise DegradationError(
            f"perturbation would sacrifice {sacrificed_t!r} "
            f"(pass on_infeasible='degrade' to accept the shrunk collective)")
    return new_problem, sacrificed_t
