"""The single solve pipeline every collective goes through.

``solve_collective`` replaces the four near-identical ``solve_*``
functions: resolve the spec, validate the problem, and dispatch to the
spec's :meth:`~repro.collectives.base.CollectiveSpec.solve` — by default
the classic build-LP / solve / extract pipeline with a configurable
flow-cleaning pass pipeline; composites override it to solve a joint LP
over shared capacities or to chain per-stage solves (sequential phases).
``schedule_collective`` is the matching registry-dispatched schedule
reconstruction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.collectives.base import CollectiveSolution
from repro.collectives.registry import resolve_collective

if TYPE_CHECKING:  # lazy: repro.core's package __init__ imports back here
    from repro.core.flowclean import FlowPass


def solve_collective(problem, collective: Optional[str] = None,
                     backend: str = "auto", eps: float = 1e-9,
                     passes: Optional[Sequence["FlowPass"]] = None,
                     mode: Optional[str] = None,
                     on_infeasible: Optional[str] = None,
                     **solve_kwargs) -> CollectiveSolution:
    """Solve a steady-state collective end to end.

    Parameters
    ----------
    problem:
        Any registered problem instance (``ScatterProblem``,
        ``ReduceProblem``, ``GossipProblem``, ``ReduceScatterProblem``, ...).
    collective:
        Spec name override; needed when one problem type serves several
        collectives (``ReduceProblem`` -> ``"reduce"`` or ``"prefix"``).
    backend:
        LP backend (``"auto"`` / ``"exact"`` / ``"highs"``).
    eps:
        Zero threshold for float solutions (exact solves use 0).
    passes:
        Flow post-processing pipeline; defaults to the spec's
        ``default_passes()``.
    mode:
        Composition-mode override for composite collectives
        (``"joint"`` / ``"sequential"`` / ``"pipelined"``); ``None``
        keeps the spec's default.  Rejected for plain collectives.
    on_infeasible:
        ``"degrade"`` — shrink the collective to the surviving reachable
        node set before solving (:func:`repro.collectives.degrade
        .degrade_problem`) and record the dropped nodes on
        ``solution.sacrificed``; ``None``/``"error"`` (default) — solve
        the problem exactly as given.
    solve_kwargs:
        Forwarded to :func:`repro.lp.solve` (``warm_start``, ``canonical``,
        ``cache``, ``warm_basis``, ``cache_tag``, ...).
    """
    sacrificed = ()
    if on_infeasible not in (None, "error", "degrade"):
        raise ValueError(f"unknown on_infeasible policy {on_infeasible!r}")
    if on_infeasible == "degrade":
        from repro.collectives.degrade import degrade_problem

        problem, sacrificed = degrade_problem(problem)
    spec = resolve_collective(problem, collective)
    spec.validate(problem)
    if mode is not None:
        from repro.collectives.base import CompositeCollectiveSpec

        if not isinstance(spec, CompositeCollectiveSpec):
            raise ValueError(f"{spec.name!r} is not a composite collective; "
                             "the mode option does not apply")
        sol = spec.solve(problem, backend=backend, eps=eps, passes=passes,
                         mode=mode, **solve_kwargs)
    else:
        sol = spec.solve(problem, backend=backend, eps=eps, passes=passes,
                         **solve_kwargs)
    if sacrificed:
        sol.sacrificed = sacrificed
    return sol


def schedule_collective(solution: CollectiveSolution):
    """Periodic one-port schedule for any collective solution.

    Applies the spec's declared ``delivery_mode`` to the built schedule
    when the spec's ``build_schedule`` did not pin one itself, so setting
    the class attribute is sufficient for any spec.
    """
    spec = solution.spec
    schedule = spec.build_schedule(solution)
    if spec.delivery_mode is not None and schedule.delivery_mode is None:
        schedule.delivery_mode = spec.delivery_mode
    return schedule
