"""The single solve pipeline every collective goes through.

``solve_collective`` replaces the four near-identical ``solve_*``
functions: resolve the spec, build the LP, solve it, and hand the raw
optimum to the spec's extractor with a configurable flow-cleaning pass
pipeline.  ``schedule_collective`` is the matching registry-dispatched
schedule reconstruction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.collectives.base import CollectiveSolution
from repro.collectives.registry import resolve_collective
from repro.lp import solve as lp_solve

if TYPE_CHECKING:  # lazy: repro.core's package __init__ imports back here
    from repro.core.flowclean import FlowPass


def solve_collective(problem, collective: Optional[str] = None,
                     backend: str = "auto", eps: float = 1e-9,
                     passes: Optional[Sequence["FlowPass"]] = None,
                     **solve_kwargs) -> CollectiveSolution:
    """Solve a steady-state collective end to end.

    Parameters
    ----------
    problem:
        Any registered problem instance (``ScatterProblem``,
        ``ReduceProblem``, ``GossipProblem``, ``ReduceScatterProblem``, ...).
    collective:
        Spec name override; needed when one problem type serves several
        collectives (``ReduceProblem`` -> ``"reduce"`` or ``"prefix"``).
    backend:
        LP backend (``"auto"`` / ``"exact"`` / ``"highs"``).
    eps:
        Zero threshold for float solutions (exact solves use 0).
    passes:
        Flow post-processing pipeline; defaults to the spec's
        ``default_passes()``.
    solve_kwargs:
        Forwarded to :func:`repro.lp.solve` (``warm_start``, ``canonical``,
        ``cache``, ...).
    """
    spec = resolve_collective(problem, collective)
    spec.validate(problem)
    lp = spec.build_lp(problem)
    sol = lp_solve(lp, backend=backend, **solve_kwargs)
    if not sol.optimal:
        raise RuntimeError(f"LP solve failed: {sol.status}")
    tol = 0 if sol.exact else eps
    if passes is None:
        passes = spec.default_passes()
    return spec.extract(problem, lp, sol, tol, passes)


def schedule_collective(solution: CollectiveSolution):
    """Periodic one-port schedule for any collective solution."""
    return solution.spec.build_schedule(solution)
