"""Registry spec for the Series of All-gathers (joint composite).

The first composite riding the composition layer: one broadcast stage per
block (source = the block's owner, targets = every other participant),
solved as a joint LP over the shared one-port capacities and scheduled by
superposing the per-block arborescence bundles.
"""

from __future__ import annotations

from repro.collectives.base import CompositeCollectiveSpec
from repro.collectives.registry import register_collective
from repro.core.allgather import AllGatherProblem
from repro.core.broadcast import BroadcastProblem


class AllGatherSpec(CompositeCollectiveSpec):
    name = "all-gather"
    title = "Series of All-gathers — every participant's block reaches everyone (joint broadcast composition)"
    problem_type = AllGatherProblem
    mode = "joint"

    def stages(self, problem):
        return [("broadcast",
                 BroadcastProblem(problem.platform, problem.owner(b),
                                  problem.block_targets(b),
                                  msg_size=problem.msg_size))
                for b in problem.blocks]

    def format_commodity(self, send_key):
        return "content"

    # ------------------------------------------------------------ CLI
    def add_arguments(self, parser) -> None:
        parser.add_argument("--participants", required=True,
                            help="comma-separated node ids; participant b "
                                 "owns block b")
        parser.add_argument("--msg-size", type=int, default=1,
                            dest="msg_size")

    def problem_from_args(self, platform, args):
        from repro.cli import parse_nodes

        return AllGatherProblem(platform, parse_nodes(args.participants),
                                msg_size=args.msg_size)

    def conformance_problem(self, platform, hosts, rng):
        if len(hosts) < 2:
            return None
        return AllGatherProblem(platform, hosts[:4])


ALL_GATHER = register_collective(AllGatherSpec())
