"""Registry spec for the Series of Reduce-scatters (``SSRS(G)``).

This collective exists to prove the registry architecture: everything
below is plug-in code — the LP builder and per-block projections live in
:mod:`repro.core.reduce_scatter`, and the shared orchestrator, pass
pipeline, schedule machinery and simulator run unchanged.
"""

from __future__ import annotations

from typing import List

from repro.collectives.base import CollectiveSolution, CollectiveSpec, SimSemantics
from repro.collectives.registry import register_collective
from repro.core import intervals as iv
from repro.core.flowclean import PruneEpsilonRatesPass, RemoveCyclesPass
from repro.core.reduce_scatter import (
    ReduceScatterProblem,
    ReduceScatterSolution,
    build_reduce_scatter_lp,
    build_reduce_scatter_schedule,
    _cons_name,
    _send_name,
)
from repro.sim.operators import SeqConcat


class ReduceScatterSpec(CollectiveSpec):
    name = "reduce-scatter"
    title = "Series of Reduce-scatters — every participant ends with one reduced block (SSRS)"
    problem_type = ReduceScatterProblem
    solution_type = ReduceScatterSolution

    def build_lp(self, problem):
        return build_reduce_scatter_lp(problem)

    # ---------------------------------------------------------- codec
    def commodities(self, problem):
        ivals = iv.all_intervals(problem.n_values)
        return [(b, interval) for b in problem.blocks for interval in ivals]

    def commodity_var(self, problem, commodity, i, j):
        b, interval = commodity
        return _send_name(i, j, b, interval)

    def send_key(self, commodity, i, j):
        b, interval = commodity
        return (i, j, b, interval)

    def send_unit_time(self, problem, key):
        i, j, _b, interval = key
        return problem.size(interval) * problem.platform.cost(i, j)

    def cons_node(self, key):
        return key[0]

    def cons_unit_time(self, problem, key):
        node, _b, task = key
        return problem.task_time(node, task)

    def format_commodity(self, send_key):
        b = send_key[2]
        k, m = send_key[3]
        return f"b{b}:v[{k},{m}]"

    # ----------------------------------------------------- extraction
    def default_passes(self):
        # cycles cancelled per (block, interval) so per-block tree
        # extraction terminates, exactly as for the plain reduce
        return (PruneEpsilonRatesPass(), RemoveCyclesPass())

    def finalize(self, problem, throughput, send, paths, lp, sol, tol):
        cons = {}
        for h in problem.compute_hosts():
            for b in problem.blocks:
                for t in iv.all_tasks(problem.n_values):
                    r = sol.value(lp.get(_cons_name(h, b, t)))
                    if r > tol:
                        cons[(h, b, t)] = r
        return self.solution_type(problem=problem, throughput=throughput,
                                  send=send, cons=cons, lp_solution=sol,
                                  exact=sol.exact, collective=self.name)

    # ----------------------------------------------------- invariants
    def verify(self, solution: CollectiveSolution, tol=0) -> List[str]:
        """Shared port/alpha capacities plus per-block reduce invariants
        (conservation and a ``TP`` delivery for every block)."""
        bad = self._port_violations(solution, tol)
        p_ = solution.problem
        for h in p_.compute_hosts():
            a = solution.alpha(h)
            if a > 1 + tol:
                bad.append(f"alpha[{h}] {a} > 1")
        n = p_.n_values
        full = iv.full_interval(n)
        for b in p_.blocks:
            block = solution.block_solution(b)
            tgt = p_.block_target(b)
            for node in p_.platform.nodes():
                for interval in iv.all_intervals(n):
                    if iv.is_leaf(interval) and p_.owner(interval[0]) == node:
                        continue
                    if node == tgt and interval == full:
                        continue
                    inflow = sum(f for (i, j, vv), f in block.send.items()
                                 if j == node and vv == interval)
                    outflow = sum(f for (i, j, vv), f in block.send.items()
                                  if i == node and vv == interval)
                    produced = sum(r for (h, t), r in block.cons.items()
                                   if h == node and iv.task_output(t) == interval)
                    consumed = sum(r for (h, t), r in block.cons.items()
                                   if h == node and interval in iv.task_inputs(t))
                    lhs, rhs = inflow + produced, outflow + consumed
                    if abs(lhs - rhs) > tol:
                        bad.append(
                            f"conserve[{node},b{b}:v{interval}] {lhs} != {rhs}")
            arrived = sum(f for (i, j, vv), f in block.send.items()
                          if j == tgt and vv == full)
            local = sum(r for (h, t), r in block.cons.items()
                        if h == tgt and iv.task_output(t) == full)
            if abs(arrived + local - solution.throughput) > tol:
                bad.append(
                    f"throughput[b{b}] {arrived + local} != {solution.throughput}")
        return bad

    # ------------------------------------------------------- schedule
    def rate_bundle(self, solution: CollectiveSolution):
        from repro.core.schedule import RateBundle, tree_rate_bundle

        return RateBundle.merge(
            [tree_rate_bundle(solution.problem, block_trees,
                              target=solution.problem.block_target(b),
                              stream=lambda r, b=b: (b, r))
             for b, block_trees in solution.extract().items()])

    def build_schedule(self, solution: CollectiveSolution):
        return build_reduce_scatter_schedule(solution)

    # ------------------------------------------------------ simulator
    def simulation(self, schedule, problem, op=None) -> SimSemantics:
        op = op or SeqConcat
        n = problem.n_values
        # every block reduces the same logical fragment sequence, so each
        # delivered block equals the full non-commutative reduction
        return SimSemantics(
            supplies=self._leaf_value_supplies(schedule, problem, op),
            expected=lambda item, seq: op.expected(n, seq),
            combine=op.combine)

    def ops_bound_factor(self, problem) -> int:
        return problem.n_values  # one TP-rate delivery group per block

    # ------------------------------------------------------------ CLI
    def add_arguments(self, parser) -> None:
        parser.add_argument("--participants", required=True,
                            help="comma-separated node ids in logical (⊕) "
                                 "order; participant b receives block b")
        parser.add_argument("--msg-size", type=int, default=1, dest="msg_size")
        parser.add_argument("--task-work", type=int, default=1,
                            dest="task_work")

    def problem_from_args(self, platform, args):
        from repro.cli import parse_nodes

        return ReduceScatterProblem(platform, parse_nodes(args.participants),
                                    msg_size=args.msg_size,
                                    task_work=args.task_work)

    def report(self, solution: CollectiveSolution) -> str:
        trees = solution.extract()
        lines = []
        for b in sorted(trees):
            block_trees = trees[b]
            lines.append(f"block {b} -> {solution.problem.block_target(b)!r}: "
                         f"{len(block_trees)} reduction tree(s)")
            lines.extend(t.describe() for t in block_trees)
        return "\n".join(lines)

    def conformance_problem(self, platform, hosts, rng):
        if len(hosts) < 2:
            return None
        return ReduceScatterProblem(platform, hosts[:3])


REDUCE_SCATTER = register_collective(ReduceScatterSpec())
