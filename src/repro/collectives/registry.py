"""Collective registry: name -> :class:`CollectiveSpec` instance.

``register_collective`` is called once per spec at import time; user
code can register additional collectives the same way.  Resolution works
either by name or by problem type; type resolution is **explicit**, never
an import-order accident:

- specs that share another collective's problem type declare
  ``resolve_by_type = False`` (prefix rides ``ReduceProblem``) and are
  reachable only by name, and
- among the remaining candidates the highest ``priority`` passed to
  :func:`register_collective` wins (default 0); only a genuine priority
  tie falls back to registration order.
"""

from __future__ import annotations

from typing import List, Optional

from repro.collectives.base import CollectiveSpec

_registry: dict = {}  # name -> CollectiveSpec, insertion-ordered
_priorities: dict = {}  # name -> (priority, registration serial)
_reg_serial = 0  # monotonic: re-registrations get a fresh, unique serial
_builtins_loaded = False


def _load_builtins() -> None:
    """Import the built-in spec modules (which self-register) on first
    registry access.  Lazy because the core problem modules import
    :mod:`repro.collectives.base`; importing the specs (which import the
    core modules back) at package-import time would be circular."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    import repro.collectives.scatter  # noqa: F401
    import repro.collectives.reduce  # noqa: F401
    import repro.collectives.gossip  # noqa: F401
    import repro.collectives.prefix  # noqa: F401
    import repro.collectives.reduce_scatter  # noqa: F401
    import repro.collectives.broadcast  # noqa: F401
    import repro.collectives.allgather  # noqa: F401
    import repro.collectives.allreduce  # noqa: F401
    import repro.baselines.algorithms  # noqa: F401  (classical baselines)
    # set only after every import succeeded: a failed spec import must
    # resurface on the next registry access, not leave a partial registry
    _builtins_loaded = True


def register_collective(spec: CollectiveSpec, replace: bool = False,
                        priority: int = 0) -> CollectiveSpec:
    """Register ``spec`` under ``spec.name``; returns the spec.

    Re-registering a name raises unless ``replace=True`` (supported so
    tests and downstream code can shadow a built-in).  ``priority``
    settles problem-type resolution when several type-eligible specs
    accept the same problem class: the highest priority wins, ties break
    by registration order.
    """
    global _reg_serial
    if not spec.name:
        raise ValueError("collective spec needs a non-empty name")
    if spec.name in _registry and not replace:
        raise ValueError(f"collective {spec.name!r} is already registered")
    _registry[spec.name] = spec
    _priorities[spec.name] = (priority, _reg_serial)
    _reg_serial += 1
    return spec


def unregister_collective(name: str) -> None:
    _registry.pop(name, None)
    _priorities.pop(name, None)


def get_collective(name: str) -> CollectiveSpec:
    _load_builtins()
    try:
        return _registry[name]
    except KeyError:
        known = ", ".join(sorted(_registry)) or "(none)"
        raise KeyError(f"unknown collective {name!r}; registered: {known}") \
            from None


def available_collectives() -> List[CollectiveSpec]:
    """Registered specs in registration order."""
    _load_builtins()
    return list(_registry.values())


def resolve_collective(problem, collective: Optional[str] = None) -> CollectiveSpec:
    """Spec for ``problem``: by explicit name, else by problem type.

    Type-based resolution only considers specs with
    ``resolve_by_type=True`` — specs that *share* another collective's
    problem type (``prefix`` rides ``ReduceProblem``) opt out and must be
    requested by name.  Among eligible specs the highest registration
    ``priority`` wins; only a genuine tie falls back to registration
    order, so resolution never silently depends on import order.
    """
    if collective is not None:
        return get_collective(collective)
    _load_builtins()
    candidates = [spec for spec in _registry.values()
                  if spec.resolve_by_type
                  and isinstance(problem, spec.problem_type)]
    if candidates:
        return max(candidates,
                   key=lambda s: (_priorities[s.name][0],
                                  -_priorities[s.name][1]))
    raise KeyError(
        f"no registered collective accepts a {type(problem).__name__}; "
        f"registered: {', '.join(sorted(_registry)) or '(none)'}")
