"""repro — steady-state throughput optimization of scatter and reduce
operations on heterogeneous platforms.

Reproduction of Legrand, Marchal, Robert, *"Optimizing the steady-state
throughput of scatter and reduce operations on heterogeneous platforms"*
(INRIA RR-4872, 2003 / IPPS 2004).

Quickstart::

    from repro.platform import figure2_platform
    from repro.core import ScatterProblem, solve_scatter, build_scatter_schedule
    from repro.sim.executor import simulate_scatter

    problem = ScatterProblem(figure2_platform(), "Ps", ["P0", "P1"])
    solution = solve_scatter(problem)           # TP == 1/2, exact
    schedule = build_scatter_schedule(solution) # periodic one-port schedule
    result = simulate_scatter(schedule, problem, n_periods=50)
    assert result.correct

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
