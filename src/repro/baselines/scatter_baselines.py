"""Makespan-oriented scatter baselines.

``direct_scatter`` is what a naive MPI implementation does for a series of
scatters: the source pushes each message itself, hop by hop along a fixed
shortest path, one message at a time (one-port).  It ignores multi-route
splitting and relay parallelism, which is exactly what the steady-state LP
exploits — the gap between the two is the paper's motivation.

``spt_scatter_throughput`` is the single-route *ablation*: the full
steady-state machinery, but restricted to the edges of one shortest-path
tree.  Comparing it with ``TP(G)`` isolates the value of multiple routes
(Figure 2's m0 messages using both relays).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.scatter import ScatterProblem, solve_scatter
from repro.platform.graph import NodeId
from repro.platform.routing import shortest_path, shortest_path_tree
from repro.sim.network import OnePortNetwork
from repro.sim.metrics import steady_throughput
from repro.sim.trace import validate_one_port


@dataclass
class BaselineRun:
    """Outcome of simulating a baseline for a series of operations."""

    name: str
    n_ops: int
    completion_times: List[object]
    makespan: object
    throughput: float
    one_port_violations: List[str]

    @property
    def correct(self) -> bool:
        return not self.one_port_violations


def direct_scatter(problem: ScatterProblem, n_ops: int,
                   record_trace: bool = True) -> BaselineRun:
    """Simulate ``n_ops`` pipelined scatters with fixed shortest-path routing.

    For each operation, the source emits one message per target (round-robin
    over targets); each message is forwarded store-and-forward along the
    target's shortest path.  All resource contention is resolved greedily by
    the one-port network.
    """
    g = problem.platform
    net = OnePortNetwork(g, record_trace=record_trace)
    routes: Dict[NodeId, List[NodeId]] = {}
    for k in problem.targets:
        path = shortest_path(g, problem.source, k)
        if path is None:
            raise ValueError(f"target {k!r} unreachable from source")
        routes[k] = path
    completions: List[object] = []
    for op in range(n_ops):
        arrivals = []
        for k in problem.targets:
            arrivals.append(net.route_transfer(routes[k], 1, 0))
        completions.append(max(arrivals))
    violations = validate_one_port(net.trace) if net.trace is not None else []
    # the analytic twin of this run (same fixed routes, pipelined) must
    # pass the registered spec's shared verify()/edge_occupation() path;
    # any accounting mismatch it reports fails the run
    violations += direct_scatter_solution(problem).verify()
    return BaselineRun(name="direct-scatter", n_ops=n_ops,
                       completion_times=completions,
                       makespan=completions[-1] if completions else 0,
                       throughput=steady_throughput(completions),
                       one_port_violations=violations)


def direct_scatter_solution(problem: ScatterProblem):
    """The :func:`direct_scatter` strategy as a shared-pipeline solution.

    Solves the registered ``"direct-scatter"`` baseline spec
    (:mod:`repro.baselines.algorithms`): same fixed canonical
    shortest-path routes, pipelined at the analytic rate ``1 / max port
    load``, but expressed as a ``CollectiveSolution`` — so it verifies,
    schedules and simulates through the exact machinery the LP solutions
    use.
    """
    from repro.collectives import solve_collective

    return solve_collective(problem, collective="direct-scatter")


def spt_scatter_throughput(problem: ScatterProblem,
                           backend: str = "auto") -> object:
    """Optimal steady-state throughput restricted to one shortest-path tree.

    Answers: how much of ``TP(G)`` is owed to multi-route freedom?  (always
    ``<= TP(G)``; strictly less whenever splitting traffic across routes
    relieves the bottleneck).
    """
    tree = shortest_path_tree(problem.platform, problem.source)
    for k in problem.targets:
        if k not in tree:
            raise ValueError(f"target {k!r} unreachable from source")
    sub_problem = ScatterProblem(tree, problem.source, problem.targets)
    return solve_scatter(sub_problem, backend=backend).throughput
