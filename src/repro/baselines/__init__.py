"""Baseline collective algorithms for comparison.

The paper's thesis is that steady-state LP scheduling beats the classical
makespan-oriented, single-route / single-tree approaches when operations are
pipelined.  These baselines make that comparison concrete:

Scatter
    - :func:`~repro.baselines.scatter_baselines.direct_scatter` — the source
      sends every message itself along shortest paths (store-and-forward),
    - :func:`~repro.baselines.scatter_baselines.spt_scatter_throughput` —
      the LP restricted to a single shortest-path tree (single-route
      ablation),
    - :func:`~repro.baselines.scatter_baselines.direct_scatter_solution` —
      the same plan as a :class:`~repro.collectives.base.CollectiveSolution`
      riding the shared ``verify()`` / ``edge_occupation()`` path.

Reduce
    - :func:`~repro.baselines.reduce_baselines.flat_tree_reduce` — everyone
      ships its value to the target, which merges alone,
    - :func:`~repro.baselines.reduce_baselines.binary_tree_reduce` — an
      order-preserving balanced binary merge tree,
    - :func:`~repro.baselines.reduce_baselines.best_single_tree_throughput`
      — the best *one* reduction tree extracted from the LP solution,
      pipelined alone (multi-tree ablation); each candidate is priced
      through :func:`~repro.baselines.reduce_baselines.single_tree_solution`
      so its rate is an exact rational and its loads pass shared
      verification.

Classical algorithm specs (:mod:`repro.baselines.algorithms`)
    The textbook collectives, registered as first-class ``CollectiveSpec``
    plug-ins — reachable by name through ``solve_collective(problem,
    collective=...)`` and replayable on both simulation engines:

    - ``direct-scatter`` — source-routed scatter on shortest paths,
    - ``ring-reduce-scatter`` / ``ring-all-gather`` / ``ring-all-reduce``
      — the bidirectional-chain / ring-walk family,
    - ``halving-reduce-scatter`` / ``doubling-all-gather`` /
      ``rabenseifner-all-reduce`` — the recursive power-of-two family.

    Each spec solves analytically (throughput = 1 / bottleneck load, an
    exact rational), emits a real :class:`PeriodicSchedule`, and is
    order-preserving so non-commutative combine operators stay correct.

The optimality-gap auto-tuner (:mod:`repro.tune`, CLI ``repro tune``)
    solves the LP optimum for an instance, replays every applicable
    classical baseline on the simulation engine, and prints an
    exact-rational gap table (``repro.viz.gap_table``):
    ``gap = TP_LP / TP_baseline >= 1``, with each baseline's simulated
    steady-window rate matching its analytic rate bit-exactly.
"""

from repro.baselines.scatter_baselines import (
    direct_scatter,
    direct_scatter_solution,
    spt_scatter_throughput,
)
from repro.baselines.reduce_baselines import (
    best_single_tree_throughput,
    binary_tree_reduce,
    flat_tree_reduce,
    single_tree_resource_load,
    single_tree_solution,
)

__all__ = [
    "direct_scatter",
    "direct_scatter_solution",
    "spt_scatter_throughput",
    "best_single_tree_throughput",
    "binary_tree_reduce",
    "flat_tree_reduce",
    "single_tree_resource_load",
    "single_tree_solution",
]
