"""Baseline collective algorithms for comparison.

The paper's thesis is that steady-state LP scheduling beats the classical
makespan-oriented, single-route / single-tree approaches when operations are
pipelined.  These baselines make that comparison concrete:

Scatter
    - :func:`~repro.baselines.scatter_baselines.direct_scatter` — the source
      sends every message itself along shortest paths (store-and-forward),
    - :func:`~repro.baselines.scatter_baselines.spt_scatter_throughput` —
      the LP restricted to a single shortest-path tree (single-route
      ablation).

Reduce
    - :func:`~repro.baselines.reduce_baselines.flat_tree_reduce` — everyone
      ships its value to the target, which merges alone,
    - :func:`~repro.baselines.reduce_baselines.binary_tree_reduce` — an
      order-preserving balanced binary merge tree,
    - :func:`~repro.baselines.reduce_baselines.best_single_tree_throughput`
      — the best *one* reduction tree extracted from the LP solution,
      pipelined alone (multi-tree ablation).
"""

from repro.baselines.scatter_baselines import (
    direct_scatter,
    spt_scatter_throughput,
)
from repro.baselines.reduce_baselines import (
    best_single_tree_throughput,
    binary_tree_reduce,
    flat_tree_reduce,
    single_tree_resource_load,
)

__all__ = [
    "direct_scatter",
    "spt_scatter_throughput",
    "best_single_tree_throughput",
    "binary_tree_reduce",
    "flat_tree_reduce",
    "single_tree_resource_load",
]
