"""Classical collective algorithms as registered ``CollectiveSpec`` plug-ins.

The seed baselines (:mod:`repro.baselines.scatter_baselines`,
:mod:`repro.baselines.reduce_baselines`) replay store-and-forward runs on
an event-driven network model, outside the unified pipeline.  This module
instead expresses the classical algorithms practitioners actually deploy —
fixed-route scatter, ring reduce-scatter / all-gather, recursive halving /
doubling, and Rabenseifner's all-reduce (reduce-scatter ∘ all-gather,
Träff 2024) — as *analytic steady-state solutions*: each algorithm is a
fixed per-operation plan of logical transfers and merge tasks, pipelined
across operations, so its throughput is exactly ``1 / max resource load
per operation`` (the most-loaded out-port, in-port or CPU).

Because every spec here emits a genuine :class:`CollectiveSolution`, the
whole existing machinery applies unchanged: shared ``verify()`` /
``edge_occupation()`` / ``alpha()``, ``schedule_collective`` (the plans
become real :class:`~repro.core.schedule.PeriodicSchedule`\\ s), both
simulation engines, the CLI, and the conformance matrix.  The optimality
gap against the LP optimum is then an exact rational — see
:mod:`repro.tune`.

Two algebraic constraints shape the plan constructions:

- the reduction operator is **non-commutative** (partials only merge
  adjacent rank intervals, in order), so the ring reduce-scatter is the
  order-preserving *bidirectional chain* variant (prefix partials flow
  right, suffix partials flow left, meeting at each block's target) and
  recursive halving runs **smallest distance first** so every partial
  stays an aligned contiguous rank interval;
- every logical transfer is routed along one canonical shortest path
  (multi-hop on sparse platforms), the classical fixed single-route
  discipline the LP is free to beat.

Both variants keep the classical cost profile: per operation each rank
sends/receives ``n - 1`` block-sized messages (ring) or ``log2 n``
messages of halving/doubling sizes, and performs ``n - 1`` merges.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.collectives.base import CollectiveSolution, CollectiveSpec, SimSemantics
from repro.collectives.registry import register_collective
from repro.core.allgather import AllGatherProblem
from repro.core.allreduce import AllReduceProblem
from repro.core.reduce_scatter import ReduceScatterProblem
from repro.core.scatter import ScatterProblem
from repro.platform.graph import NodeId
from repro.platform.routing import shortest_path

Item = tuple
RankTransfer = Tuple[Item, int, int, object, int]  # (item, src, dst, size, round)
RankTask = Tuple[int, Tuple[int, int, int]]


@dataclass(frozen=True)
class LogicalTransfer:
    """One per-operation message of an algorithm plan (node-level)."""

    item: Item
    src: NodeId
    dst: NodeId
    size: object
    round: int


@dataclass(frozen=True)
class AlgorithmPlan:
    """A classical algorithm's fixed per-operation work, routed on the
    platform: logical transfers (each with its canonical shortest path),
    merge-task counts/times per node, and the resulting analytic
    pipelined throughput ``1 / max per-operation resource load``."""

    transfers: Tuple[LogicalTransfer, ...]
    routes: Dict[Item, Tuple[NodeId, ...]]
    sizes: Dict[Item, object]
    task_counts: Dict[Tuple[NodeId, tuple], int]
    task_times: Dict[Tuple[NodeId, tuple], object]
    n_rounds: int
    throughput: object

    @property
    def max_hops(self) -> int:
        return max(len(p) - 1 for p in self.routes.values())


def _require_power_of_two(n: int, what: str) -> None:
    if n < 2 or n & (n - 1):
        raise ValueError(f"{what} needs a power-of-two participant count, "
                         f"got {n}")


def _assemble_plan(platform, transfers: List[LogicalTransfer],
                   tasks: List[Tuple[NodeId, tuple]], task_time_fn,
                   n_rounds: int) -> AlgorithmPlan:
    """Route every logical transfer, tally per-resource loads, and price
    the pipelined rate.  Raises ``ValueError`` when a hop is unroutable."""
    routes: Dict[Item, Tuple[NodeId, ...]] = {}
    sizes: Dict[Item, object] = {}
    path_memo: Dict[Tuple[NodeId, NodeId], Tuple[NodeId, ...]] = {}
    out_load: Dict[NodeId, object] = {}
    in_load: Dict[NodeId, object] = {}
    for tr in transfers:
        if tr.item in routes:
            raise ValueError(f"duplicate plan item {tr.item!r}")
        pair = (tr.src, tr.dst)
        if pair not in path_memo:
            path = shortest_path(platform, tr.src, tr.dst)
            if path is None:
                raise ValueError(f"{tr.src!r} cannot reach {tr.dst!r}")
            path_memo[pair] = tuple(path)
        routes[tr.item] = path_memo[pair]
        sizes[tr.item] = tr.size
        for u, v in zip(path_memo[pair], path_memo[pair][1:]):
            t = tr.size * platform.cost(u, v)
            out_load[u] = out_load.get(u, 0) + t
            in_load[v] = in_load.get(v, 0) + t
    task_counts: Dict[Tuple[NodeId, tuple], int] = {}
    task_times: Dict[Tuple[NodeId, tuple], object] = {}
    cpu_load: Dict[NodeId, object] = {}
    for node, task in tasks:
        key = (node, task)
        task_counts[key] = task_counts.get(key, 0) + 1
        if key not in task_times:
            task_times[key] = task_time_fn(node, task)
        cpu_load[node] = cpu_load.get(node, 0) + task_times[key]
    load = max([*out_load.values(), *in_load.values(), *cpu_load.values()])
    tp = Fraction(1) / load  # stays exact for int/Fraction loads
    return AlgorithmPlan(transfers=tuple(transfers), routes=routes,
                         sizes=sizes, task_counts=task_counts,
                         task_times=task_times, n_rounds=n_rounds,
                         throughput=tp)


def _to_nodes(nodes, rank_transfers: List[RankTransfer],
              rank_tasks: List[RankTask]):
    transfers = [LogicalTransfer(item, nodes[s], nodes[d], size, rnd)
                 for (item, s, d, size, rnd) in rank_transfers]
    tasks = [(nodes[r], task) for (r, task) in rank_tasks]
    return transfers, tasks


# ----------------------------------------------------------------------
# rank-level round constructions
# ----------------------------------------------------------------------
def ring_reduce_scatter_rounds(n: int, size) -> Tuple[List[RankTransfer], List[RankTask], int]:
    """Order-preserving bidirectional-chain ring reduce-scatter.

    For block ``b``, prefix partials ``v[0, r]`` flow rightward along the
    chain ``0 -> 1 -> ... -> b`` and suffix partials ``v[r, n-1]`` flow
    leftward along ``n-1 -> n-2 -> ... -> b``; both meet at the block's
    target, which performs the final adjacent merges.  Per operation each
    rank sends and receives exactly ``n - 1`` block-sized messages and
    performs ``n - 1`` merges — the classical ring cost — while every
    merge combines *adjacent* rank intervals, as the non-commutative
    operator requires.
    """
    xfers: List[RankTransfer] = []
    tasks: List[RankTask] = []
    for b in range(n):
        for r in range(b):  # prefix chain toward b
            xfers.append(((("rsL", b, r), r, r + 1, size((0, r)), r)))
        for r in range(b + 1, n):  # suffix chain toward b
            xfers.append(((("rsR", b, r), r, r - 1, size((r, n - 1)),
                           n - 1 - r)))
        for r in range(1, b):
            tasks.append((r, (0, r - 1, r)))
        for r in range(b + 1, n - 1):
            tasks.append((r, (r, r, n - 1)))
        if b == 0:
            tasks.append((0, (0, 0, n - 1)))
        elif b == n - 1:
            tasks.append((n - 1, (0, n - 2, n - 1)))
        else:
            tasks.append((b, (0, b - 1, b)))
            tasks.append((b, (0, b, n - 1)))
    return xfers, tasks, n - 1


def halving_reduce_scatter_rounds(n: int, size) -> Tuple[List[RankTransfer], List[RankTask], int]:
    """Recursive halving, smallest exchange distance first (``n = 2^q``).

    Before round ``t`` rank ``r`` holds, for every block ``b ≡ r (mod
    2^t)``, the partial over the aligned rank interval ``A_t(r)`` of
    length ``2^t`` containing ``r``.  In round ``t`` it ships the partials
    of the blocks its partner ``r XOR 2^t`` is responsible for — one
    message of ``n / 2^{t+1}`` interval-sized partials — and the partner
    merges each with its own half, doubling the interval.  Distance-
    doubling (rather than the classical distance-halving) order keeps
    every partial a contiguous aligned interval, which the
    non-commutative operator requires; the per-rank message-size profile
    is the classical one in reverse order (same total, ``n - 1`` blocks).
    """
    _require_power_of_two(n, "recursive halving")
    q = n.bit_length() - 1
    xfers: List[RankTransfer] = []
    tasks: List[RankTask] = []
    for t in range(q):
        d = 1 << t
        blocks_per_msg = n >> (t + 1)
        for r in range(n):
            p = r ^ d
            lo = (r >> t) << t
            part = (lo, lo + d - 1)
            xfers.append(((("rh", t, r), r, p,
                           blocks_per_msg * size(part), t)))
            lo2 = (p >> (t + 1)) << (t + 1)
            merged = (lo2, lo2 + d - 1, lo2 + (d << 1) - 1)
            for _ in range(blocks_per_msg):
                tasks.append((p, merged))
    return xfers, tasks, q


def ring_all_gather_rounds(n: int, block_size) -> Tuple[List[RankTransfer], List[RankTask], int]:
    """Classical ring all-gather: block ``b`` walks the ring from its
    owner, one neighbor per round, reaching everyone in ``n - 1`` hops."""
    xfers: List[RankTransfer] = []
    for b in range(n):
        for s in range(n - 1):
            xfers.append(((("ag", b, s), (b + s) % n, (b + s + 1) % n,
                           block_size(b), s)))
    return xfers, [], n - 1


def doubling_all_gather_rounds(n: int, block_size) -> Tuple[List[RankTransfer], List[RankTask], int]:
    """Recursive doubling all-gather (``n = 2^q``): in round ``t`` rank
    ``r`` exchanges its current aligned window of ``2^t`` blocks with
    rank ``r XOR 2^t``, doubling what everyone holds."""
    _require_power_of_two(n, "recursive doubling")
    q = n.bit_length() - 1
    xfers: List[RankTransfer] = []
    for t in range(q):
        d = 1 << t
        for r in range(n):
            lo = (r >> t) << t
            sz = sum(block_size(b) for b in range(lo, lo + d))
            xfers.append(((("rd", t, r), r, r ^ d, sz, t)))
    return xfers, [], q


# ----------------------------------------------------------------------
# the spec machinery shared by every classical algorithm
# ----------------------------------------------------------------------
class AlgorithmSpec(CollectiveSpec):
    """Analytic baseline spec: solve == price a fixed routed round plan.

    Subclasses implement :meth:`build_plan`; everything else — solution
    assembly, shared verification, schedule construction, simulator
    semantics, CLI — is common.  ``resolve_by_type`` is ``False``: the
    LP spec keeps owning each problem type, and the baselines are only
    reachable by name (``solve_collective(p, collective="ring-...")``).
    """

    resolve_by_type = False
    delivery_mode = "min"
    #: short human label for gap tables
    algorithm: str = ""

    _plan_memo: Optional[Tuple[object, AlgorithmPlan]] = None

    def build_plan(self, problem) -> AlgorithmPlan:
        raise NotImplementedError

    def plan(self, problem) -> AlgorithmPlan:
        memo = self._plan_memo
        if memo is None or memo[0] is not problem:
            memo = (problem, self.build_plan(problem))
            self._plan_memo = memo
        return memo[1]

    def applicable(self, problem) -> bool:
        """Whether this algorithm can run this instance at all (participant
        count shape, reachability of every fixed route)."""
        if not isinstance(problem, self.problem_type):
            return False
        try:
            self.plan(problem)
        except ValueError:
            return False
        return True

    def validate(self, problem) -> None:
        super().validate(problem)
        self.plan(problem)  # raises ValueError when inapplicable

    # ------------------------------------------------------------ solve
    def solve(self, problem, backend: str = "auto", eps: float = 1e-9,
              passes=None, **solve_kwargs) -> CollectiveSolution:
        """Analytic solve: no LP — every backend returns the same exact
        rational plan rates (extra LP keywords are accepted and ignored
        so the orchestrator/conformance call sites work unchanged)."""
        plan = self.plan(problem)
        tp = plan.throughput
        send: Dict[tuple, object] = {}
        for tr in plan.transfers:
            path = plan.routes[tr.item]
            for u, v in zip(path, path[1:]):
                send[(u, v, tr.item)] = tp
        cons = {key: count * tp for key, count in plan.task_counts.items()}
        return CollectiveSolution(
            problem=problem, throughput=tp, send=send,
            cons=cons if cons else None, lp_solution=None,
            exact=isinstance(tp, Fraction), collective=self.name)

    # ------------------------------------------------------------ codec
    def send_unit_time(self, problem, key: tuple) -> object:
        plan = self.plan(problem)
        return plan.sizes[key[2]] * problem.platform.cost(key[0], key[1])

    def cons_unit_time(self, problem, key: tuple) -> object:
        return self.plan(problem).task_times[key]

    def format_commodity(self, send_key: tuple) -> str:
        return str(send_key[2])

    # ----------------------------------------------------- invariants
    def verify(self, solution: CollectiveSolution, tol=0) -> List[str]:
        """One-port/alpha budgets plus plan fidelity: the solution must
        carry exactly the plan's routed rates and merge-task rates."""
        problem = solution.problem
        plan = self.plan(problem)
        tp = solution.throughput
        off_plan = [key for key in solution.send if key[2] not in plan.sizes]
        if off_plan:
            # occupation is undefined for unknown items; report and stop
            return [f"off-plan rate {key}" for key in off_plan]
        bad = self._port_violations(solution, tol)
        for node in {key[0] for key in plan.task_counts}:
            a = solution.alpha(node)
            if a > 1 + tol:
                bad.append(f"alpha[{node}] {a} > 1")
        expected: Dict[tuple, object] = {}
        for tr in plan.transfers:
            path = plan.routes[tr.item]
            for u, v in zip(path, path[1:]):
                expected[(u, v, tr.item)] = tp
        for key, f in solution.send.items():
            if key not in expected:
                bad.append(f"off-plan rate {key}")
            elif abs(f - expected[key]) > tol:
                bad.append(f"rate[{key}] {f} != {expected[key]}")
        for key in expected:
            if key not in solution.send:
                bad.append(f"missing plan hop {key}")
        expected_cons = {key: count * tp
                         for key, count in plan.task_counts.items()}
        cons = solution.cons or {}
        for key, r in cons.items():
            if key not in expected_cons:
                bad.append(f"off-plan task {key}")
            elif abs(r - expected_cons[key]) > tol:
                bad.append(f"task[{key}] {r} != {expected_cons[key]}")
        for key in expected_cons:
            if key not in cons:
                bad.append(f"missing plan task {key}")
        return bad

    # ------------------------------------------------------- schedule
    def rate_bundle(self, solution: CollectiveSolution):
        from repro.core.schedule import RateBundle

        rates = {key: (f, self.send_unit_time(solution.problem, key))
                 for key, f in solution.send.items()}
        plan = self.plan(solution.problem)
        deliveries = {item: route[-1] for item, route in plan.routes.items()}
        return RateBundle(rates=rates, deliveries=deliveries)

    def build_schedule(self, solution: CollectiveSolution):
        from repro.core.schedule import schedule_from_rates

        if not solution.exact:
            raise ValueError(
                "schedule construction needs exact rational rates; this "
                "platform's costs are not rational")
        bundle = self.rate_bundle(solution)
        # merge tasks are priced into the analytic rate (alpha <= 1) but
        # not replayed: the schedule is pure communication, so both sim
        # engines apply and op counting is min over delivery streams
        return schedule_from_rates(
            bundle.rates, throughput=solution.throughput,
            deliveries=bundle.deliveries, delivery_mode="min",
            name=f"{self.name}({solution.problem.platform.name})")

    # ------------------------------------------------------ simulator
    def simulation(self, schedule, problem, op=None) -> SimSemantics:
        plan = self.plan(problem)
        supplies = {}
        for item in schedule.deliveries:
            origin = plan.routes[item][0]
            supplies[(origin, item)] = \
                (lambda it: (lambda seq: (it, seq)))(item)
        return SimSemantics(supplies=supplies,
                            expected=lambda item, seq: (item, seq))

    # ------------------------------------------------------ reporting
    def tp_suffix(self, problem, solution=None) -> str:
        plan = self.plan(problem)
        return (f"  [{self.algorithm}; {plan.n_rounds} rounds/op, "
                f"<= {plan.max_hops} hops/route]")


class _ParticipantArgsMixin:
    """CLI arguments shared by the rank-based algorithm specs."""

    def add_arguments(self, parser) -> None:
        parser.add_argument("--participants", required=True,
                            help="comma-separated node ids (rank order)")
        parser.add_argument("--msg-size", dest="msg_size", type=int, default=1)

    def _participants(self, args):
        from repro.cli import parse_nodes

        return parse_nodes(args.participants)


class DirectScatterSpec(AlgorithmSpec):
    name = "direct-scatter"
    title = "Baseline: store-and-forward scatter along fixed shortest paths"
    problem_type = ScatterProblem
    algorithm = "fixed shortest-path routes"

    def build_plan(self, problem) -> AlgorithmPlan:
        transfers = [LogicalTransfer(("msg", k), problem.source, k, 1, 0)
                     for k in problem.targets]
        return _assemble_plan(problem.platform, transfers, [], None,
                              n_rounds=1)

    def add_arguments(self, parser) -> None:
        parser.add_argument("--source", required=True)
        parser.add_argument("--targets", required=True,
                            help="comma-separated node ids")

    def problem_from_args(self, platform, args):
        from repro.cli import parse_node, parse_nodes

        return ScatterProblem(platform, parse_node(args.source),
                              parse_nodes(args.targets))

    def conformance_problem(self, platform, hosts, rng):
        if len(hosts) < 2:
            return None
        problem = ScatterProblem(platform, hosts[0],
                                 [h for h in hosts[1:5] if h != hosts[0]])
        return problem if self.applicable(problem) else None


class _ReduceScatterAlgorithmSpec(_ParticipantArgsMixin, AlgorithmSpec):
    problem_type = ReduceScatterProblem

    def rounds(self, problem):
        raise NotImplementedError

    def build_plan(self, problem) -> AlgorithmPlan:
        xfers, tasks, n_rounds = self.rounds(problem)
        transfers, node_tasks = _to_nodes(problem.participants, xfers, tasks)
        return _assemble_plan(problem.platform, transfers, node_tasks,
                              problem.task_time, n_rounds)

    def add_arguments(self, parser) -> None:
        super().add_arguments(parser)
        parser.add_argument("--task-work", dest="task_work", type=int,
                            default=1)

    def problem_from_args(self, platform, args):
        return ReduceScatterProblem(platform, self._participants(args),
                                    msg_size=args.msg_size,
                                    task_work=args.task_work)

    def _conformance_count(self, hosts) -> int:
        return min(len(hosts), 4)

    def conformance_problem(self, platform, hosts, rng):
        m = self._conformance_count(hosts)
        if m < 2:
            return None
        problem = self.problem_type(platform, list(hosts[:m]))
        return problem if self.applicable(problem) else None


class RingReduceScatterSpec(_ReduceScatterAlgorithmSpec):
    name = "ring-reduce-scatter"
    title = "Baseline: order-preserving bidirectional-chain ring reduce-scatter"
    algorithm = "bidirectional ring"

    def rounds(self, problem):
        return ring_reduce_scatter_rounds(problem.n_values, problem.size)


class HalvingReduceScatterSpec(_ReduceScatterAlgorithmSpec):
    name = "halving-reduce-scatter"
    title = "Baseline: recursive-halving reduce-scatter (power-of-two ranks)"
    algorithm = "recursive halving"

    def rounds(self, problem):
        return halving_reduce_scatter_rounds(problem.n_values, problem.size)

    def _conformance_count(self, hosts) -> int:
        m = min(len(hosts), 4)
        return 1 << (m.bit_length() - 1) if m else 0


class _AllGatherAlgorithmSpec(_ParticipantArgsMixin, AlgorithmSpec):
    problem_type = AllGatherProblem

    def problem_from_args(self, platform, args):
        return AllGatherProblem(platform, self._participants(args),
                                msg_size=args.msg_size)

    def _conformance_count(self, hosts) -> int:
        return min(len(hosts), 4)

    def conformance_problem(self, platform, hosts, rng):
        m = self._conformance_count(hosts)
        if m < 2:
            return None
        problem = AllGatherProblem(platform, list(hosts[:m]))
        return problem if self.applicable(problem) else None


class RingAllGatherSpec(_AllGatherAlgorithmSpec):
    name = "ring-all-gather"
    title = "Baseline: ring all-gather (each block walks the logical ring)"
    algorithm = "ring"

    def build_plan(self, problem) -> AlgorithmPlan:
        xfers, tasks, n_rounds = ring_all_gather_rounds(
            problem.n_values, lambda b: problem.msg_size)
        transfers, _ = _to_nodes(problem.participants, xfers, tasks)
        return _assemble_plan(problem.platform, transfers, [], None, n_rounds)


class DoublingAllGatherSpec(_AllGatherAlgorithmSpec):
    name = "doubling-all-gather"
    title = "Baseline: recursive-doubling all-gather (power-of-two ranks)"
    algorithm = "recursive doubling"

    def build_plan(self, problem) -> AlgorithmPlan:
        xfers, tasks, n_rounds = doubling_all_gather_rounds(
            problem.n_values, lambda b: problem.msg_size)
        transfers, _ = _to_nodes(problem.participants, xfers, tasks)
        return _assemble_plan(problem.platform, transfers, [], None, n_rounds)

    def _conformance_count(self, hosts) -> int:
        m = min(len(hosts), 4)
        return 1 << (m.bit_length() - 1) if m else 0


class _AllReduceAlgorithmSpec(_ParticipantArgsMixin, AlgorithmSpec):
    """Reduce-scatter phase followed by all-gather phase, pipelined across
    operations (phases of consecutive operations overlap, so the rate is
    still ``1 / max combined per-operation load``)."""

    problem_type = AllReduceProblem

    def phases(self, problem, rs_problem):
        raise NotImplementedError

    def build_plan(self, problem) -> AlgorithmPlan:
        if callable(problem.msg_size):
            raise ValueError(f"{self.name} needs a constant block size")
        rs_problem = ReduceScatterProblem(
            problem.platform, problem.participants,
            msg_size=problem.msg_size, task_work=problem.task_work,
            task_time_fn=problem.task_time_fn)
        (rs_x, rs_t, rs_rounds), (ag_x, ag_rounds) = \
            self.phases(problem, rs_problem)
        xfers = rs_x + [(item, s, d, size, rs_rounds + rnd)
                        for (item, s, d, size, rnd) in ag_x]
        transfers, node_tasks = _to_nodes(problem.participants, xfers, rs_t)
        return _assemble_plan(problem.platform, transfers, node_tasks,
                              rs_problem.task_time, rs_rounds + ag_rounds)

    def add_arguments(self, parser) -> None:
        super().add_arguments(parser)
        parser.add_argument("--task-work", dest="task_work", type=int,
                            default=1)

    def problem_from_args(self, platform, args):
        return AllReduceProblem(platform, self._participants(args),
                                msg_size=args.msg_size,
                                task_work=args.task_work)

    def _conformance_count(self, hosts) -> int:
        return min(len(hosts), 4)

    def conformance_problem(self, platform, hosts, rng):
        m = self._conformance_count(hosts)
        if m < 2:
            return None
        problem = AllReduceProblem(platform, list(hosts[:m]))
        return problem if self.applicable(problem) else None


class RingAllReduceSpec(_AllReduceAlgorithmSpec):
    name = "ring-all-reduce"
    title = "Baseline: ring all-reduce (ring reduce-scatter + ring all-gather)"
    algorithm = "ring RS + ring AG"

    def phases(self, problem, rs_problem):
        n = problem.n_values
        rs = ring_reduce_scatter_rounds(n, rs_problem.size)
        ag_x, _, ag_rounds = ring_all_gather_rounds(
            n, lambda b: problem.msg_size)
        return rs, (ag_x, ag_rounds)


class RabenseifnerAllReduceSpec(_AllReduceAlgorithmSpec):
    name = "rabenseifner-all-reduce"
    title = "Baseline: Rabenseifner all-reduce (recursive halving + doubling)"
    algorithm = "halving RS + doubling AG"

    def phases(self, problem, rs_problem):
        n = problem.n_values
        rs = halving_reduce_scatter_rounds(n, rs_problem.size)
        ag_x, _, ag_rounds = doubling_all_gather_rounds(
            n, lambda b: problem.msg_size)
        return rs, (ag_x, ag_rounds)

    def _conformance_count(self, hosts) -> int:
        m = min(len(hosts), 4)
        return 1 << (m.bit_length() - 1) if m else 0


DIRECT_SCATTER = register_collective(DirectScatterSpec())
RING_REDUCE_SCATTER = register_collective(RingReduceScatterSpec())
HALVING_REDUCE_SCATTER = register_collective(HalvingReduceScatterSpec())
RING_ALL_GATHER = register_collective(RingAllGatherSpec())
DOUBLING_ALL_GATHER = register_collective(DoublingAllGatherSpec())
RING_ALL_REDUCE = register_collective(RingAllReduceSpec())
RABENSEIFNER_ALL_REDUCE = register_collective(RabenseifnerAllReduceSpec())
