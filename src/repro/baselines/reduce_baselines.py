"""Makespan-oriented and single-tree reduce baselines.

All baselines respect the non-commutative operator: partial results only
ever merge *adjacent* logical intervals, in order.

``flat_tree_reduce``
    Every participant ships its value straight to the target along a
    shortest path; the target merges everything itself, left to right.
    This is the trivial MPI_Reduce-on-one-node strategy.

``binary_tree_reduce``
    A balanced, order-preserving binary merge tree over ranks: interval
    ``[k, m]`` splits at its midpoint; the merge of ``[k, m]`` runs on the
    node hosting the left half's result (data moves right-to-left, as in
    classical tree reductions), and the root result is forwarded to the
    target.  This is the strongest *static single-tree* heuristic one
    normally deploys.

``best_single_tree_throughput``
    Ablation: take the LP's extracted trees, keep only the best one, and
    compute its standalone pipelined throughput analytically — pipelining
    one tree saturates its most-loaded resource, so the rate is
    ``1 / max resource load per operation``.  Comparing against ``TP(G)``
    isolates the value of *mixing several trees* (Figures 11-12 use two).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.scatter_baselines import BaselineRun
from repro.core.reduce_op import ReduceProblem
from repro.core.trees import ReductionTree
from repro.platform.graph import NodeId
from repro.platform.routing import shortest_path
from repro.sim.metrics import steady_throughput
from repro.sim.network import OnePortNetwork
from repro.sim.operators import SeqConcat
from repro.sim.trace import validate_one_port


def flat_tree_reduce(problem: ReduceProblem, n_ops: int,
                     op=SeqConcat, record_trace: bool = True) -> BaselineRun:
    """Everyone sends to the target; the target merges alone, in order."""
    g = problem.platform
    n = problem.n_values
    net = OnePortNetwork(g, record_trace=record_trace)
    routes = {}
    for j in range(n):
        src = problem.owner(j)
        if src == problem.target:
            continue
        path = shortest_path(g, src, problem.target)
        if path is None:
            raise ValueError(f"participant {src!r} cannot reach the target")
        routes[j] = path
    completions: List[object] = []
    errors: List[str] = []
    for stamp in range(n_ops):
        arrive = {}
        values = {}
        for j in range(n):
            values[j] = op.leaf(j, stamp)
            if j in routes:
                arrive[j] = net.route_transfer(routes[j],
                                               problem.size((j, j)), 0)
            else:
                arrive[j] = 0
        # target merges left to right; merge j needs v[0,j-1] and v_j
        acc = values[0]
        ready = arrive[0]
        for j in range(1, n):
            ready = max(ready, arrive[j])
            ready = net.compute(problem.target,
                                problem.task_time(problem.target, (0, j - 1, j)),
                                ready)
            acc = op.combine(acc, values[j])
        if acc != op.expected(n, stamp):
            errors.append(f"wrong result for stamp {stamp}")
        completions.append(ready)
    violations = validate_one_port(net.trace) if net.trace is not None else []
    violations += errors
    return BaselineRun(name="flat-tree-reduce", n_ops=n_ops,
                       completion_times=completions,
                       makespan=completions[-1] if completions else 0,
                       throughput=steady_throughput(completions),
                       one_port_violations=violations)


def _binary_merge(problem: ReduceProblem, net: OnePortNetwork, op,
                  k: int, m: int, stamp: int) -> Tuple[NodeId, object, object]:
    """Recursively reduce interval [k, m]; returns (node, ready time, value)."""
    if k == m:
        return problem.owner(k), 0, op.leaf(k, stamp)
    mid = (k + m) // 2
    ln, lt, lv = _binary_merge(problem, net, op, k, mid, stamp)
    rn, rt, rv = _binary_merge(problem, net, op, mid + 1, m, stamp)
    if rn != ln:
        path = shortest_path(problem.platform, rn, ln)
        if path is None:
            raise ValueError(f"{rn!r} cannot reach {ln!r}")
        rt = net.route_transfer(path, problem.size((mid + 1, m)), rt)
    ready = net.compute(ln, problem.task_time(ln, (k, mid, m)), max(lt, rt))
    return ln, ready, op.combine(lv, rv)


def binary_tree_reduce(problem: ReduceProblem, n_ops: int,
                       op=SeqConcat, record_trace: bool = True) -> BaselineRun:
    """Order-preserving balanced binary merge tree, pipelined greedily."""
    g = problem.platform
    n = problem.n_values
    net = OnePortNetwork(g, record_trace=record_trace)
    completions: List[object] = []
    errors: List[str] = []
    for stamp in range(n_ops):
        node, ready, value = _binary_merge(problem, net, op, 0, n - 1, stamp)
        if node != problem.target:
            path = shortest_path(g, node, problem.target)
            if path is None:
                raise ValueError(f"{node!r} cannot reach the target")
            ready = net.route_transfer(path, problem.size((0, n - 1)), ready)
        if value != op.expected(n, stamp):
            errors.append(f"wrong result for stamp {stamp}")
        completions.append(ready)
    violations = validate_one_port(net.trace) if net.trace is not None else []
    violations += errors
    return BaselineRun(name="binary-tree-reduce", n_ops=n_ops,
                       completion_times=completions,
                       makespan=completions[-1] if completions else 0,
                       throughput=steady_throughput(completions),
                       one_port_violations=violations)


def single_tree_resource_load(tree: ReductionTree,
                              problem: ReduceProblem) -> Dict[Tuple[str, NodeId], object]:
    """Per-operation busy time of every resource when running one tree.

    Resources: ``("send", node)``, ``("recv", node)``, ``("cpu", node)``.
    """
    g = problem.platform
    load: Dict[Tuple[str, NodeId], object] = {}

    def bump(key, amount):
        load[key] = load.get(key, 0) + amount

    for tr in tree.transfers:
        t = problem.size(tr.interval) * g.cost(tr.src, tr.dst)
        bump(("send", tr.src), t)
        bump(("recv", tr.dst), t)
    for tk in tree.tasks:
        bump(("cpu", tk.node), problem.task_time(tk.node, tk.task))
    return load


def single_tree_solution(tree: ReductionTree,
                         problem: ReduceProblem) -> "CollectiveSolution":
    """One tree, pipelined alone, as a shared-pipeline ``ReduceSolution``.

    The standalone rate saturates the tree's most-loaded resource:
    ``rate = 1 / max_load``, kept an exact ``Fraction`` for rational
    loads (``1 / worst`` in floats can round an occupation of exactly 1
    to just above it and trip the one-port check).  The returned solution
    runs the same ``verify()`` / ``edge_occupation()`` / ``alpha()`` path
    as every LP solution — the analytic accounting is cross-checked
    against the registered reduce spec's invariants, not trusted.
    """
    from repro.core.reduce_op import ReduceSolution

    load = single_tree_resource_load(tree, problem)
    worst = max(load.values()) if load else 0
    if worst <= 0:
        raise ValueError("tree occupies no resource; no standalone rate")
    rate = Fraction(1) / worst  # float only when the platform is inexact
    send: Dict[tuple, object] = {}
    cons: Dict[tuple, object] = {}
    for tr in tree.transfers:
        key = (tr.src, tr.dst, tr.interval)
        send[key] = send.get(key, 0) + rate
    for tk in tree.tasks:
        key = (tk.node, tk.task)
        cons[key] = cons.get(key, 0) + rate
    return ReduceSolution(problem=problem, throughput=rate, send=send,
                          cons=cons, lp_solution=None,
                          exact=isinstance(rate, Fraction))


def best_single_tree_throughput(trees: Sequence[ReductionTree],
                                problem: ReduceProblem) -> Tuple[object, Optional[ReductionTree]]:
    """Best standalone pipelined rate over the given trees.

    A single tree, pipelined, is limited by its most-loaded port/CPU:
    ``rate = 1 / max_load``.  Every candidate rate is built through
    :func:`single_tree_solution` and must pass the shared ``verify()``
    path (conservation, one-port, alpha).  Returns ``(rate, best tree)``.
    """
    best_rate = 0
    best_tree: Optional[ReductionTree] = None
    for tree in trees:
        load = single_tree_resource_load(tree, problem)
        worst = max(load.values()) if load else None
        if worst is None or worst <= 0:
            continue
        sol = single_tree_solution(tree, problem)
        errors = sol.verify(tol=0 if sol.exact else 1e-9)
        if errors:
            raise ValueError(
                f"single-tree baseline fails shared verification: {errors[:3]}")
        rate = sol.throughput
        if rate > best_rate:
            best_rate, best_tree = rate, tree
    return best_rate, best_tree
