"""Fixed-width result tables for benchmark and CLI output.

Benchmarks print paper-reported values next to measured ones; this keeps
the formatting in one place so every experiment reads the same way.
:func:`rates_table` renders any collective solution's send rates by
dispatching the row formatting through the solution's registered spec.
"""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Monospace table with a header rule; cells stringified as-is."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    out: List[str] = []
    if title:
        out.append(title)
    out.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append("  ".join("-" * w for w in widths))
    for row in cells:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def rates_table(solution, title: str = "send rates") -> str:
    """Send-rates table of any collective solution (registry-dispatched).

    The solution's spec chooses the headers and the per-commodity labels,
    so every collective — including ones registered by downstream code —
    renders through the same path.
    """
    headers, rows = solution.spec.rate_rows(solution)
    return format_table(headers, rows, title=title)


def degradation_table(report, run=None, title: str = "degradation") -> str:
    """What a platform perturbation cost, in one metric/value table.

    ``report`` is a :class:`repro.lp.resolve.ReplanReport`; pass the
    :class:`repro.sim.faults.FaultedRun` as ``run`` to append the
    simulator-side view (schedule switch time, post-switch measured
    steady throughput).
    """
    rows = [("events", report.delta.describe()),
            ("TP before", report.base_throughput),
            ("TP after", report.throughput),
            ("replan path", "warm (incremental)" if report.warm
             else "cold (rebuild)"),
            ("replan latency", f"{report.replan_s * 1e3:.1f} ms")]
    if report.cold_s is not None:
        rows.append(("cold solve", f"{report.cold_s * 1e3:.1f} ms"))
        rows.append(("speedup", f"{report.speedup:.2f}x"))
    rows.append(("sacrificed",
                 ", ".join(str(n) for n in report.sacrificed) or "none"))
    if run is not None:
        from repro.sim.faults import steady_window_throughput

        for sw in run.result.switches:
            rows.append(("schedule switch",
                         f"t={sw['time']} ({sw['mode']})"))
        if run.result.abandoned:
            rows.append(("abandoned", str(len(run.result.abandoned))))
        rows.append(("steady TP (measured)",
                     steady_window_throughput(run)))
    return format_table(["metric", "value"], rows, title=title)


def composition_table(solution, title: str = "composition") -> str:
    """Stage breakdown of a composed collective solution.

    One row per stage: its registered collective, the composition mode
    that produced the solution, its own throughput, and the share of the
    steady state it occupies — the phase fraction ``TP / TP_k`` for
    sequential composites, ``full period`` for joint and pipelined ones
    (all stages run concurrently, chained for pipelined).
    """
    spec = solution.spec
    mode = getattr(solution, "mode", "") or getattr(spec, "mode", "joint")
    sequential = mode == "sequential"
    rows = []
    for k, s in enumerate(solution.stage_solutions or ()):
        share = (f"{solution.throughput / s.throughput} of period"
                 if sequential else "full period")
        rows.append((f"s{k}", s.collective, mode, s.throughput, share))
    return format_table(["stage", "collective", "mode", "TP", "share"], rows,
                        title=title)


def gap_table(rows, title: str = "optimality gaps: steady-state LP vs classical baselines") -> str:
    """Exact-rational optimality-gap table of :func:`repro.tune.tune` rows.

    One row per (instance, baseline): the classical algorithm's analytic
    pipelined rate, the LP optimum, their exact ratio (``>= 1`` — every
    baseline plan is LP-feasible), and whether the simulated replay
    reproduced the analytic rate bit-exactly.
    """
    table = []
    for r in rows:
        gap = f"{r.gap} ({float(r.gap):.2f}x)"
        sim = f"exact ({r.engine})" if r.sim_matches \
            else f"MISMATCH {r.sim_tp} ({r.engine})"
        table.append((r.topology, r.collective, r.baseline, r.n_rounds,
                      r.baseline_tp, r.lp_tp, gap, sim))
    return format_table(
        ["topology", "collective", "baseline", "rounds", "TP(baseline)",
         "TP(LP)", "gap", "sim"],
        table, title=title)
