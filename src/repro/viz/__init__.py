"""Text-based reporting: ASCII Gantt charts, tables, DOT export."""

from repro.viz.gantt import ascii_gantt
from repro.viz.tables import format_table, gap_table, rates_table
from repro.viz.dot import platform_to_dot

__all__ = ["ascii_gantt", "format_table", "gap_table", "rates_table",
           "platform_to_dot"]
