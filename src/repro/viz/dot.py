"""Graphviz DOT export of platforms (for eyeballing reconstructions)."""

from __future__ import annotations

from repro.platform.graph import PlatformGraph


def platform_to_dot(g: PlatformGraph, undirected_pairs: bool = True) -> str:
    """DOT text; symmetric edge pairs collapse to one undirected-looking
    edge (``dir=none``) when ``undirected_pairs`` is set."""
    lines = [f'digraph "{g.name}" {{']
    for n in g.nodes():
        s = g.speed(n)
        if g.is_compute(n):
            lines.append(f'  "{n}" [shape=box,style=filled,fillcolor=gray,'
                         f'label="{n}\\nspeed {s}"];')
        else:
            lines.append(f'  "{n}" [shape=circle];')
    done = set()
    for e in g.edges():
        if (e.src, e.dst) in done:
            continue
        symmetric = (undirected_pairs and g.has_edge(e.dst, e.src)
                     and g.cost(e.dst, e.src) == e.cost)
        attrs = f'label="{e.cost}"'
        if symmetric:
            attrs += ",dir=none"
            done.add((e.dst, e.src))
        lines.append(f'  "{e.src}" -> "{e.dst}" [{attrs}];')
        done.add((e.src, e.dst))
    lines.append("}")
    return "\n".join(lines)
