"""ASCII Gantt chart of a periodic schedule.

Renders one period, one row per resource (send/recv port per node, plus CPU
rows when computations exist), with matching-slot boundaries marked — the
textual twin of the paper's Figure 4.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Tuple

from repro.core.schedule import PeriodicSchedule


def ascii_gantt(schedule: PeriodicSchedule, width: int = 72) -> str:
    """Render one period of ``schedule`` as an ASCII chart.

    Each row shows the busy stretches of one sender port as ``#`` (with the
    receiving peer noted in the legend); slot boundaries are ``|`` marks on
    the axis row.  ``width`` characters span one period.
    """
    period = Fraction(schedule.period)
    if period <= 0:
        return "(empty schedule)"
    scale = Fraction(width) / period

    def col(t) -> int:
        c = int(Fraction(t) * scale)
        return min(c, width - 1)

    # collect per-pair busy intervals
    rows: Dict[str, List[Tuple[object, object]]] = {}
    offset = Fraction(0)
    boundaries = [0]
    for slot in schedule.slots:
        pair_off: Dict[Tuple[object, object], object] = {}
        for t in slot.transfers:
            key = f"{t.src} -> {t.dst}"
            start = offset + pair_off.get((t.src, t.dst), Fraction(0))
            end = start + Fraction(t.time)
            pair_off[(t.src, t.dst)] = pair_off.get((t.src, t.dst), Fraction(0)) + Fraction(t.time)
            rows.setdefault(key, []).append((start, end))
        offset += Fraction(slot.duration)
        boundaries.append(offset)
    for node, tasks in schedule.compute.items():
        cpu_off = Fraction(0)
        key = f"cpu {node}"
        for ct in tasks:
            total = Fraction(ct.count) * Fraction(ct.unit_time)
            rows.setdefault(key, []).append((cpu_off, cpu_off + total))
            cpu_off += total

    label_w = max((len(k) for k in rows), default=5) + 1
    lines = [f"period = {schedule.period}   throughput = {schedule.throughput} "
             f"({schedule.ops_per_period()} ops/period)"]
    axis = [" "] * width
    for b in boundaries:
        axis[col(b) if b < period else width - 1] = "|"
    lines.append(" " * label_w + "".join(axis))
    for key in sorted(rows):
        bar = [" "] * width
        for (s, e) in rows[key]:
            c0, c1 = col(s), col(e)
            if c1 <= c0:
                c1 = c0 + 1
            for c in range(c0, min(c1, width)):
                bar[c] = "#"
        lines.append(key.ljust(label_w) + "".join(bar))
    return "\n".join(lines)
