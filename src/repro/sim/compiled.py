"""Compiled (vectorized) replay of periodic schedules.

:func:`compile_schedule` lowers a
:class:`~repro.core.schedule.PeriodicSchedule` into dense numpy tables —
flattened per-slot transfer arrays (draw key, pipe, landing target,
micro-unit budget), per-pipe prefix sums, CSR-style replica fan-out /
delivery / chain-credit maps — and :class:`VectorizedExecutor` replays
them with array ops instead of per-instance Python dicts.

The engine is **count-exact**: it tracks how many instances sit in each
``(node, item)`` buffer and how far each ``(src, dst, item)`` pipe has
progressed, in integer *micro-units* (messages scaled by the lcm of all
split denominators), instead of materializing stamped
:class:`~repro.sim.executor.Instance` objects.  For pure-communication
schedules this loses nothing: payloads are pure functions of their
sequence stamp and are never transformed in flight, so the reference
executor's per-delivery value checks are vacuous by construction and the
two engines produce bit-identical delivery counts, delivery times and
chain-credit behaviour (the conformance suite and the differential fuzz
tests pit them against each other case by case).  Anything value-checked
— compute tasks, a combine operator — must run on the reference
executor; :func:`repro.sim.engine.resolve_sim_engine` enforces the split.

Three speed tiers, all exact:

1. **Vectorized period** — when no chain links exist and every draw
   provably succeeds (one ``bincount`` feasibility check against buffered
   counts), the whole period commits as array ops: completions per
   transfer are floor-differences of static micro-unit prefix sums, port
   accounting and landings are ``bincount`` scatter-adds.
2. **Scalar fallback** — warm-up periods (empty buffers) and chain-gated
   schedules run an integer loop over the flattened transfer table: no
   Fractions, no dicts in the hot path; the chain-credit ledger is a
   prefix-sum count (credits minted before a slot's start minus credits
   spent) instead of a sorted list of mint times.
3. **Transition memoization** — period dynamics are a pure function of
   the (relative) period-start state; once a state digest repeats, the
   recorded transition replays in O(buffers) without touching the
   transfer table at all.  Steady state is exactly such a fixed point, so
   long replays cost warm-up plus bookkeeping.

Delivery *times* are reconstructed exactly (Fractions) once per unique
within-period movement pattern and shared by every period that repeats
the pattern, so ``SimulationResult.delivery_times`` is bit-compatible
with the reference executor at a fraction of the arithmetic.

Faults and schedule switches recompile: :meth:`VectorizedExecutor.fail_link`,
:meth:`~VectorizedExecutor.fail_node` and
:meth:`~VectorizedExecutor.switch_schedule` rebuild the tables (dead
transfers drop out, carried buffers are remapped by ``(node, item)``
key) and invalidate the memoized transitions — the recompile-at-switch
path that keeps :func:`repro.sim.faults.run_with_faults` on the fast
engine end to end.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass, field
from fractions import Fraction
from math import gcd
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.core.schedule import PeriodicSchedule
from repro.sim.executor import SimulationResult

NodeId = Hashable
Item = Hashable

#: Micro-unit prefix sums must fit comfortably in int64.
_MU_LIMIT = 1 << 62


def _raw_fraction(num: int, den: int) -> Fraction:
    """Fraction from an already-normalized num/den, skipping the
    constructor's gcd pass (a pure hot-path shortcut)."""
    f = Fraction.__new__(Fraction)
    f._numerator = num
    f._denominator = den
    return f


try:  # guard against fractions implementations without those slots
    _FAST_FRACTION = (_raw_fraction(3, 2) == Fraction(3, 2)
                      and _raw_fraction(3, 2) + Fraction(1, 2) == 2)
except Exception:  # pragma: no cover - exercised only off-CPython
    _FAST_FRACTION = False


def _rational(x) -> bool:
    return isinstance(x, (int, Fraction))


def compile_unsupported(schedule: PeriodicSchedule) -> Optional[str]:
    """Why :func:`compile_schedule` cannot lower this schedule (None == ok)."""
    if schedule.compute:
        return "compute tasks need the reference executor"
    den = 1
    total = 0
    for slot in schedule.slots:
        if not _rational(slot.duration):
            return "float-timed schedule (inexact slot durations)"
        for tr in slot.transfers:
            if tr.units <= 0:
                continue
            if not (_rational(tr.units) and _rational(tr.time)):
                return "float-timed schedule (inexact transfer data)"
            d = Fraction(tr.units).denominator
            den = den // gcd(den, d) * d
            total += tr.units
    if den * (total + 1) >= _MU_LIMIT:
        return "micro-unit scale overflows int64"
    return None


@dataclass
class CompiledSchedule:
    """Dense tables for one schedule under one fault epoch.

    All per-transfer arrays cover only *alive* transfers (positive units,
    not touching a dead link/node), in slot order — the order the
    reference executor processes them in.
    """

    schedule: PeriodicSchedule
    mu: int                      # micro-units per message instance
    blocked: int                 # dead slot-transfers hit per period
    # (node, item) buffer/draw keys
    keys: List[Tuple[NodeId, Item]]
    key_index: Dict[Tuple[NodeId, Item], int]
    key_supply: np.ndarray       # bool: an infinite supply sits here
    key_gate: List[Optional[Tuple[int, Hashable]]]  # (link, stream) or None
    gated_keys: np.ndarray       # key ids with a chain gate, sorted
    # (src, dst, item) pipes
    pipes: List[Tuple[NodeId, NodeId, Item]]
    pipe_index: Dict[Tuple[NodeId, NodeId, Item], int]
    pipe_total: np.ndarray       # summed alive budget (mu) per pipe/period
    # flattened transfers
    t_key: np.ndarray
    t_pipe: np.ndarray
    t_land: np.ndarray
    t_slot: np.ndarray
    t_budget: np.ndarray         # mu
    t_cum_excl: np.ndarray       # per-pipe mu prefix before this transfer
    t_cum_incl: np.ndarray
    t_pair: List[Tuple[NodeId, NodeId]]
    t_unit_time: List[Fraction]  # occupation per whole message
    # landing targets: transitive replica expansion, compiled to CSR
    lands: List[Tuple[NodeId, Item]]
    land_deliver: List[Tuple[Item, ...]]
    land_buffer_keys: List[Tuple[int, ...]]
    land_credits: List[Tuple[int, ...]]
    ld_land: np.ndarray          # delivery scatter: land id -> item id
    ld_item: np.ndarray
    lb_land: np.ndarray          # buffer scatter: land id -> key id
    lb_key: np.ndarray
    items: List[Item]            # delivery item id -> item
    item_index: Dict[Item, int]
    slot_start: List[object]     # Fraction offset of each slot in the period
    n_links: int

    def state_digest(self, avail, pipe, credit_old, gate_gap) -> bytes:
        """Relative period-start state: everything the period's behaviour
        depends on (buffered counts, pipe progress, credit backlog, gate
        gaps) — absolute sequence counters drift monotonically and are
        deliberately excluded."""
        return b"".join((avail.tobytes(), pipe.tobytes(),
                         credit_old.tobytes(), gate_gap.tobytes()))


def compile_schedule(schedule: PeriodicSchedule,
                     supplies=(),
                     dead_links=frozenset(),
                     dead_nodes=frozenset(),
                     extra_keys=()) -> CompiledSchedule:
    """Lower ``schedule`` into :class:`CompiledSchedule` tables.

    ``supplies`` is the set (or mapping) of ``(node, item)`` supply keys;
    ``extra_keys`` forces additional buffer keys into the key table (used
    when carrying state across a recompile).  Raises :class:`ValueError`
    when the schedule is not compilable — callers should consult
    :func:`compile_unsupported` (or engine auto-dispatch) first.
    """
    reason = compile_unsupported(schedule)
    if reason is not None:
        raise ValueError(f"cannot compile {schedule.name!r}: {reason}")

    mu = 1
    for slot in schedule.slots:
        for tr in slot.transfers:
            if tr.units > 0:
                d = Fraction(tr.units).denominator
                mu = mu // gcd(mu, d) * d

    produced_link, consumed_link = schedule.chain_maps()
    n_links = len(schedule.chain_links or ())

    key_index: Dict[Tuple[NodeId, Item], int] = {}
    keys: List[Tuple[NodeId, Item]] = []

    def key_id(key) -> int:
        kid = key_index.get(key)
        if kid is None:
            kid = key_index[key] = len(keys)
            keys.append(key)
        return kid

    pipe_index: Dict[Tuple[NodeId, NodeId, Item], int] = {}
    pipes: List[Tuple[NodeId, NodeId, Item]] = []
    land_index: Dict[Tuple[NodeId, Item], int] = {}
    lands: List[Tuple[NodeId, Item]] = []
    land_deliver: List[Tuple[Item, ...]] = []
    land_buffer_keys: List[Tuple[int, ...]] = []
    land_credits: List[Tuple[int, ...]] = []
    item_index: Dict[Item, int] = {}
    items: List[Item] = []

    def land_id(node, item) -> int:
        lid = land_index.get((node, item))
        if lid is not None:
            return lid
        delivered, buffered = schedule.resolve_landing(node, item)
        lid = land_index[(node, item)] = len(lands)
        lands.append((node, item))
        land_deliver.append(delivered)
        land_buffer_keys.append(tuple(key_id(k) for k in buffered))
        credits = []
        for it in delivered:
            li = produced_link.get(it)
            if li is not None:
                credits.append(li)
            if it not in item_index:
                item_index[it] = len(items)
                items.append(it)
        land_credits.append(tuple(credits))
        return lid

    # delivery items that never land this epoch still need stable ids
    for it in schedule.deliveries:
        if it not in item_index:
            item_index[it] = len(items)
            items.append(it)

    t_key: List[int] = []
    t_pipe: List[int] = []
    t_land: List[int] = []
    t_slot: List[int] = []
    t_budget: List[int] = []
    t_pair: List[Tuple[NodeId, NodeId]] = []
    t_unit_time: List[Fraction] = []
    blocked = 0
    slot_start: List[object] = schedule.slot_starts()
    for si, slot in enumerate(schedule.slots):
        for tr in slot.transfers:
            if tr.units <= 0:
                continue
            if ((tr.src, tr.dst) in dead_links or tr.src in dead_nodes
                    or tr.dst in dead_nodes):
                blocked += 1
                continue
            pk = (tr.src, tr.dst, tr.item)
            pid = pipe_index.get(pk)
            if pid is None:
                pid = pipe_index[pk] = len(pipes)
                pipes.append(pk)
            t_key.append(key_id((tr.src, tr.item)))
            t_pipe.append(pid)
            t_land.append(land_id(tr.dst, tr.item))
            t_slot.append(si)
            budget = Fraction(tr.units) * mu
            assert budget.denominator == 1
            t_budget.append(int(budget))
            t_pair.append((tr.src, tr.dst))
            t_unit_time.append(Fraction(tr.time) / Fraction(tr.units))

    for key in supplies:
        key_id(key)
    for key in extra_keys:
        key_id(key)

    n_keys, n_pipes = len(keys), len(pipes)

    def arr(xs):
        return np.asarray(xs, dtype=np.int64)

    t_key_a = arr(t_key)
    t_pipe_a = arr(t_pipe)
    t_land_a = arr(t_land)
    t_budget_a = arr(t_budget)
    # per-pipe running mu totals -> static prefix sums (completions per
    # transfer in a fully-moving period are floor-differences of these)
    cum_excl = np.zeros(len(t_key), dtype=np.int64)
    pipe_running = np.zeros(n_pipes, dtype=np.int64)
    for i, pid in enumerate(t_pipe):
        cum_excl[i] = pipe_running[pid]
        pipe_running[pid] += t_budget[i]
    cum_incl = cum_excl + t_budget_a

    key_supply = np.zeros(n_keys, dtype=bool)
    for key in supplies:
        key_supply[key_index[key]] = True
    key_gate: List[Optional[Tuple[int, Hashable]]] = [None] * n_keys
    for key, gate in consumed_link.items():
        if key in key_index:
            key_gate[key_index[key]] = gate
    gated = arr(sorted(k for k in range(n_keys) if key_gate[k] is not None))

    ld_land, ld_item, lb_land, lb_key = [], [], [], []
    for lid in range(len(lands)):
        for it in land_deliver[lid]:
            ld_land.append(lid)
            ld_item.append(item_index[it])
        for kid in land_buffer_keys[lid]:
            lb_land.append(lid)
            lb_key.append(kid)

    return CompiledSchedule(
        schedule=schedule, mu=mu, blocked=blocked,
        keys=keys, key_index=key_index, key_supply=key_supply,
        key_gate=key_gate, gated_keys=gated,
        pipes=pipes, pipe_index=pipe_index, pipe_total=pipe_running,
        t_key=t_key_a, t_pipe=t_pipe_a, t_land=t_land_a, t_slot=arr(t_slot),
        t_budget=t_budget_a, t_cum_excl=cum_excl, t_cum_incl=cum_incl,
        t_pair=t_pair, t_unit_time=t_unit_time,
        lands=lands, land_deliver=land_deliver,
        land_buffer_keys=land_buffer_keys, land_credits=land_credits,
        ld_land=arr(ld_land), ld_item=arr(ld_item),
        lb_land=arr(lb_land), lb_key=arr(lb_key),
        items=items, item_index=item_index,
        slot_start=slot_start, n_links=n_links)


@dataclass
class _Pattern:
    """One unique within-period movement pattern.

    ``events`` lists ``(item, end_offset, count)`` delivery events in the
    reference executor's land order (transfer order == chronological
    order, since a transfer always ends within its slot); every period
    that repeats the pattern lands the same deliveries at
    ``period_start + end_offset``.
    """

    events: List[Tuple[Item, object, int]]
    delivered: List[Tuple[Item, int]]
    total: int


@dataclass
class _Transition:
    """Memoized one-period state transition (valid within one epoch)."""

    pattern: int
    avail: np.ndarray
    arriving: np.ndarray
    pipe: np.ndarray
    credit_old: np.ndarray
    supply_delta: np.ndarray
    stream_delta: List[Dict[Hashable, int]]


class VectorizedExecutor:
    """Drop-in count-exact replacement for
    :class:`~repro.sim.executor.ScheduleExecutor` on pure-communication
    schedules: same ``run_period`` / ``fail_link`` / ``fail_node`` /
    ``switch_schedule`` / ``result`` surface, numpy state inside."""

    def __init__(self, schedule: PeriodicSchedule, supplies):
        self.dead_links: set = set()
        self.dead_nodes: set = set()
        self.blocked_last_period = 0
        self.time = 0
        self.periods_run = 0
        self.switches: List[Dict[str, object]] = []
        self.abandoned: List[str] = []
        # replay log: one (start time, pattern id) per period
        self._period_starts: List[object] = []
        self._period_pattern: List[int] = []
        self._patterns: List[_Pattern] = []
        self._pattern_ids: Dict[Tuple[int, bytes], int] = {}
        self._delivery_items: List[Item] = []   # every delivery item ever
        self._epoch = 0
        self._install(schedule, supplies)

    # -- installation / recompilation -----------------------------------

    def _install(self, schedule: PeriodicSchedule, supplies,
                 carry_state: Optional[Dict] = None) -> None:
        self.schedule = schedule
        self.supplies = dict(supplies)
        extra: set = set()
        if carry_state:
            extra |= carry_state["avail"].keys()
            extra |= carry_state.get("arriving", {}).keys()
        self.tables = compile_schedule(schedule, supplies=self.supplies,
                                       dead_links=self.dead_links,
                                       dead_nodes=self.dead_nodes,
                                       extra_keys=sorted(extra, key=repr))
        tb = self.tables
        n = len(tb.keys)
        self.avail = np.zeros(n, dtype=np.int64)
        self.arriving = np.zeros(n, dtype=np.int64)
        self.supply_seq = np.zeros(n, dtype=np.int64)
        self.pipe = np.zeros(len(tb.pipes), dtype=np.int64)
        self.credit_old = np.zeros(tb.n_links, dtype=np.int64)
        self.stream_next: List[Dict[Hashable, int]] = \
            [{} for _ in range(tb.n_links)]
        if carry_state:
            for key, count in carry_state["avail"].items():
                self.avail[tb.key_index[key]] = count
            for key, count in carry_state.get("arriving", {}).items():
                self.arriving[tb.key_index[key]] = count
            for key, seq in carry_state["supply_seq"].items():
                kid = tb.key_index.get(key)
                if kid is not None:
                    self.supply_seq[kid] = seq
        for it in schedule.deliveries:
            if it not in self._delivery_item_set:
                self._delivery_item_set.add(it)
                self._delivery_items.append(it)
        self._transitions: Dict[bytes, _Transition] = {}
        # scalar-path constants (plain lists: ~3x faster element access)
        self._l_key = tb.t_key.tolist()
        self._l_pipe = tb.t_pipe.tolist()
        self._l_land = tb.t_land.tolist()
        self._l_slot = tb.t_slot.tolist()
        self._l_budget = tb.t_budget.tolist()
        self._l_supply = tb.key_supply.tolist()

    # the delivery-item registry survives installs (items of pre-switch
    # schedules keep their result rows); created lazily because the first
    # _install runs from __init__
    @property
    def _delivery_item_set(self) -> set:
        s = getattr(self, "_delivery_seen_items", None)
        if s is None:
            s = self._delivery_seen_items = set()
        return s

    def _gate_gap(self) -> np.ndarray:
        tb = self.tables
        gap = np.zeros(len(tb.gated_keys), dtype=np.int64)
        for i, kid in enumerate(tb.gated_keys):
            li, stream = tb.key_gate[kid]
            gap[i] = self.stream_next[li].get(stream, 0) - self.supply_seq[kid]
        return gap

    # -- one period ------------------------------------------------------

    def run_period(self) -> int:
        tb = self.tables
        self.avail += self.arriving
        self.arriving[:] = 0
        digest = tb.state_digest(self.avail, self.pipe, self.credit_old,
                                 self._gate_gap())
        memo = self._transitions.get(digest)
        if memo is not None:
            self.avail = memo.avail.copy()
            self.arriving = memo.arriving.copy()
            self.pipe = memo.pipe.copy()
            self.credit_old = memo.credit_old.copy()
            self.supply_seq += memo.supply_delta
            for li, deltas in enumerate(memo.stream_delta):
                nxt = self.stream_next[li]
                for stream, d in deltas.items():
                    nxt[stream] = nxt.get(stream, 0) + d
            pattern = memo.pattern
        else:
            seq_before = self.supply_seq.copy()
            stream_before = [dict(nx) for nx in self.stream_next]
            if tb.n_links == 0 and self._vector_feasible():
                pattern = self._run_vectorized()
            else:
                pattern = self._run_scalar()
            self._transitions[digest] = _Transition(
                pattern=pattern, avail=self.avail.copy(),
                arriving=self.arriving.copy(), pipe=self.pipe.copy(),
                credit_old=self.credit_old.copy(),
                supply_delta=self.supply_seq - seq_before,
                stream_delta=[
                    {s: v - stream_before[li].get(s, 0)
                     for s, v in self.stream_next[li].items()
                     if v != stream_before[li].get(s, 0)}
                    for li in range(tb.n_links)])
        pat = self._patterns[pattern]
        self.blocked_last_period = tb.blocked
        self._period_starts.append(self.time)
        self._period_pattern.append(pattern)
        self.time = self.time + self.schedule.period
        self.periods_run += 1
        return pat.total

    def run_periods(self, n_periods: int) -> None:
        for _ in range(n_periods):
            self.run_period()

    # -- vectorized period ----------------------------------------------

    def _vector_feasible(self) -> bool:
        """True when every draw of a full-budget period provably succeeds:
        per-key demand (a ceil-difference of the static pipe prefix sums)
        stays within buffered counts wherever no supply backs the key."""
        tb = self.tables
        if not len(tb.t_key):
            self._vec_demand = np.zeros(len(tb.keys), dtype=np.int64)
            return True
        d0 = self.pipe[tb.t_pipe]
        mu = tb.mu
        draws = (-(-(d0 + tb.t_cum_incl) // mu)) - (-(-(d0 + tb.t_cum_excl) // mu))
        demand = np.bincount(tb.t_key, weights=draws,
                             minlength=len(tb.keys)).astype(np.int64)
        short = (demand > self.avail) & ~tb.key_supply
        if short.any():
            return False
        self._vec_demand = demand
        return True

    def _run_vectorized(self) -> int:
        tb = self.tables
        mu = tb.mu
        d0 = self.pipe[tb.t_pipe]
        comp = (d0 + tb.t_cum_incl) // mu - (d0 + tb.t_cum_excl) // mu
        demand = self._vec_demand
        take = np.where(tb.key_supply, np.minimum(demand, self.avail), demand)
        self.avail -= take
        self.supply_seq += demand - take
        self.pipe = (self.pipe + tb.pipe_total) % mu
        comp_by_land = np.bincount(tb.t_land, weights=comp,
                                   minlength=len(tb.lands)).astype(np.int64)
        if len(tb.lb_key):
            self.arriving += np.bincount(
                tb.lb_key, weights=comp_by_land[tb.lb_land],
                minlength=len(tb.keys)).astype(np.int64)
        return self._pattern_id(tb.t_budget, comp.astype(np.int64))

    # -- scalar period ---------------------------------------------------

    def _run_scalar(self) -> int:
        """Integer transfer loop: exact draw order (pipe continuation,
        then buffered, then supply behind its chain gate), no Fractions
        except the credit mint times the gate comparisons need."""
        tb = self.tables
        mu = tb.mu
        avail = self.avail.tolist()
        pipe = self.pipe.tolist()
        supply_seq = self.supply_seq.tolist()
        credit_old = self.credit_old.tolist()
        spent_old = [0] * tb.n_links
        mints: List[List[object]] = [[] for _ in range(tb.n_links)]
        spent_new = [0] * tb.n_links
        moved = [0] * len(self._l_key)
        comp = [0] * len(self._l_key)
        arriving = self.arriving
        cur_slot = -1
        pair_off: Dict[Tuple[NodeId, NodeId], object] = {}
        track_times = tb.n_links > 0  # mints gate later same-period slots
        for i, budget in enumerate(self._l_budget):
            pid = self._l_pipe[i]
            d = pipe[pid]
            moved_mu = 0
            done = 0
            if d > 0:
                step = mu - d if mu - d <= budget else budget
                budget -= step
                moved_mu += step
                if d + step >= mu:
                    done += 1
                    d = 0
                else:
                    d = d + step
            if budget > 0:
                want = -(-budget // mu)
                kid = self._l_key[i]
                got = avail[kid] if avail[kid] < want else want
                avail[kid] -= got
                if got < want and self._l_supply[kid]:
                    need = want - got
                    gate = tb.key_gate[kid]
                    if gate is None:
                        supply_seq[kid] += need
                        got = want
                    else:
                        li, stream = gate
                        seq = supply_seq[kid]
                        nxt = self.stream_next[li].get(stream, 0)
                        free = nxt - seq if nxt - seq > 0 else 0
                        free = free if free < need else need
                        credited = need - free
                        if credited:
                            now = tb.slot_start[self._l_slot[i]]
                            pool = (credit_old[li] - spent_old[li]
                                    + bisect_right(mints[li], now)
                                    - spent_new[li])
                            if credited > pool:
                                credited = pool
                            so = credit_old[li] - spent_old[li]
                            so = so if so < credited else credited
                            spent_old[li] += so
                            spent_new[li] += credited - so
                            self.stream_next[li][stream] = \
                                seq + free + credited
                        supply_seq[kid] = seq + free + credited
                        got += free + credited
                if got >= want:
                    done += budget // mu
                    if budget % mu:
                        d = budget % mu
                    moved_mu += budget
                else:
                    done += got
                    moved_mu += got * mu
            pipe[pid] = d
            moved[i] = moved_mu
            comp[i] = done
            if track_times and moved_mu > 0:
                si = self._l_slot[i]
                if si != cur_slot:
                    cur_slot = si
                    pair_off = {}
                pair = tb.t_pair[i]
                dur = tb.t_unit_time[i] * Fraction(moved_mu, mu)
                before = pair_off.get(pair, 0)
                pair_off[pair] = before + dur
                if done:
                    links = tb.land_credits[self._l_land[i]]
                    if links:
                        end = tb.slot_start[si] + before + dur
                        for li in links:
                            for _ in range(done):
                                insort(mints[li], end)
        comp_a = np.asarray(comp, dtype=np.int64)
        comp_by_land = np.bincount(tb.t_land, weights=comp_a,
                                   minlength=len(tb.lands)).astype(np.int64) \
            if len(comp) else np.zeros(len(tb.lands), dtype=np.int64)
        if len(tb.lb_key):
            arriving += np.bincount(
                tb.lb_key, weights=comp_by_land[tb.lb_land],
                minlength=len(tb.keys)).astype(np.int64)
        self.avail = np.asarray(avail, dtype=np.int64)
        self.pipe = np.asarray(pipe, dtype=np.int64)
        self.supply_seq = np.asarray(supply_seq, dtype=np.int64)
        for li in range(tb.n_links):
            self.credit_old[li] = (credit_old[li] - spent_old[li]
                                   + len(mints[li]) - spent_new[li])
        return self._pattern_id(np.asarray(moved, dtype=np.int64), comp_a)

    # -- movement patterns ----------------------------------------------

    def _pattern_id(self, moved: np.ndarray, comp: np.ndarray) -> int:
        key = (self._epoch, moved.tobytes() + comp.tobytes())
        pid = self._pattern_ids.get(key)
        if pid is not None:
            return pid
        tb = self.tables
        mu = tb.mu
        events: List[Tuple[Item, object, int]] = []
        delivered: Dict[Item, int] = {}
        cur_slot = -1
        pair_off: Dict[Tuple[NodeId, NodeId], object] = {}
        for i in np.nonzero(moved)[0].tolist():
            si = self._l_slot[i]
            if si != cur_slot:
                cur_slot = si
                pair_off = {}
            pair = tb.t_pair[i]
            dur = tb.t_unit_time[i] * Fraction(int(moved[i]), mu)
            before = pair_off.get(pair, 0)
            pair_off[pair] = before + dur
            n = int(comp[i])
            if n:
                targets = tb.land_deliver[self._l_land[i]]
                if targets:
                    end = tb.slot_start[si] + before + dur
                    for it in targets:
                        events.append((it, end, n))
                        delivered[it] = delivered.get(it, 0) + n
        pat = _Pattern(events=events, delivered=list(delivered.items()),
                       total=sum(delivered.values()))
        pid = len(self._patterns)
        self._patterns.append(pat)
        self._pattern_ids[key] = pid
        return pid

    # -- fault injection -------------------------------------------------

    def _recompile(self) -> None:
        """Rebuild tables after a platform change, carrying counted state
        across by ``(node, item)`` key; memoized transitions and the
        current epoch's patterns are invalidated."""
        tb = self.tables
        carry = {
            "avail": {tb.keys[k]: int(self.avail[k])
                      for k in np.nonzero(self.avail)[0]},
            "arriving": {tb.keys[k]: int(self.arriving[k])
                         for k in np.nonzero(self.arriving)[0]},
            "supply_seq": {tb.keys[k]: int(self.supply_seq[k])
                           for k in np.nonzero(self.supply_seq)[0]},
        }
        old_pipes = {tb.pipes[p]: int(self.pipe[p])
                     for p in np.nonzero(self.pipe)[0]}
        old_credit = self.credit_old.copy()
        old_streams = self.stream_next
        self._epoch += 1
        self._install(self.schedule, self.supplies, carry_state=carry)
        tb = self.tables
        for pk, done in old_pipes.items():
            # dead pipes were drained before the recompile, so every
            # surviving shipment's transfer is still in the new table
            self.pipe[tb.pipe_index[pk]] = done
        self.credit_old[:] = old_credit
        self.stream_next = old_streams

    def fail_link(self, src: NodeId, dst: NodeId) -> None:
        """Kill the directed link; in-flight partial instances return to
        the sender's buffer (drawn once, never double-delivered)."""
        self.dead_links.add((src, dst))
        tb = self.tables
        for p, pk in enumerate(tb.pipes):
            if pk[0] == src and pk[1] == dst and self.pipe[p] > 0:
                self.avail[tb.key_index[(src, pk[2])]] += 1
                self.pipe[p] = 0
        self._recompile()

    def fail_node(self, node: NodeId) -> None:
        """Kill a node: buffered/outbound-in-flight instances are written
        off into ``abandoned`` (one ledger line per instance, like the
        reference executor); inbound in-flight instances abort back to
        their senders."""
        self.dead_nodes.add(node)
        tb = self.tables
        for p, pk in enumerate(tb.pipes):
            if self.pipe[p] <= 0 or (pk[0] != node and pk[1] != node):
                continue
            if pk[1] == node:
                self.avail[tb.key_index[(pk[0], pk[2])]] += 1
            else:
                self.abandoned.append(
                    f"{pk[2]!r} in flight from dead {node!r}")
            self.pipe[p] = 0
        for store, kind in ((self.avail, "buffered"),
                            (self.arriving, "arriving")):
            for k in np.nonzero(store)[0]:
                n, item = tb.keys[k]
                if n == node:
                    for _ in range(int(store[k])):
                        self.abandoned.append(
                            f"{item!r} {kind} at dead {node!r}")
                    store[k] = 0
        for key in [key for key in self.supplies if key[0] == node]:
            del self.supplies[key]
        self._recompile()

    # -- schedule switch -------------------------------------------------

    def switch_schedule(self, schedule: PeriodicSchedule, supplies,
                        combine=None, expected=None,
                        mode: Optional[str] = None) -> str:
        """Swap in a re-solved schedule at the current period boundary and
        recompile.  Same contract as the reference executor's
        :meth:`~repro.sim.executor.ScheduleExecutor.switch_schedule`
        (``carry`` relocates counted buffers, ``restart`` writes them
        off); the new schedule must itself be compilable."""
        from repro.sim.executor import carry_compatible

        if combine is not None:
            raise ValueError("compiled engine cannot switch to a "
                             "value-checked schedule; use the reference "
                             "executor")
        tb = self.tables
        # drain partial shipments back to their senders
        for p in np.nonzero(self.pipe)[0]:
            src, _dst, item = tb.pipes[p]
            self.avail[tb.key_index[(src, item)]] += 1
            self.pipe[p] = 0
        self.avail += self.arriving
        self.arriving[:] = 0
        if mode is None:
            mode = "carry" if carry_compatible(self.schedule, schedule) \
                else "restart"
        elif mode not in ("carry", "restart"):
            raise ValueError(f"unknown switch mode {mode!r}")

        buffered = {tb.keys[k]: int(self.avail[k])
                    for k in np.nonzero(self.avail)[0]}
        seqs = {tb.keys[k]: int(self.supply_seq[k])
                for k in np.nonzero(self.supply_seq)[0]}
        self._epoch += 1
        if mode == "restart":
            for (node, item), count in buffered.items():
                for _ in range(count):
                    self.abandoned.append(
                        f"{item!r} written off at {node!r} "
                        f"(schedule restart)")
            self._install(schedule, supplies)
        else:
            # supply homes for relocating stranded buffers (reference
            # executor's _relocate_stranded, on counts)
            supply_node: Dict[Item, NodeId] = {}
            ambiguous = set()
            for (node, item) in supplies:
                if item in supply_node and supply_node[item] != node:
                    ambiguous.add(item)
                supply_node.setdefault(item, node)
            for item in ambiguous:
                supply_node.pop(item, None)
            sends = {(tr.src, tr.item) for slot in schedule.slots
                     for tr in slot.transfers if tr.units > 0}
            carried: Dict[Tuple[NodeId, Item], int] = {}
            for (node, item), count in buffered.items():
                key = (node, item)
                if key in sends or schedule.deliveries.get(item) == node:
                    carried[key] = carried.get(key, 0) + count
                    continue
                home = supply_node.get(item)
                if (home is not None and home != node
                        and (home, item) in sends
                        and home not in self.dead_nodes):
                    hk = (home, item)
                    carried[hk] = carried.get(hk, 0) + count
                else:
                    for _ in range(count):
                        self.abandoned.append(
                            f"{item!r} stranded at {node!r}")
            self._install(schedule, supplies,
                          carry_state={"avail": carried,
                                       "supply_seq": seqs})
        self.switches.append({"time": self.time, "mode": mode})
        return mode

    # -- results ---------------------------------------------------------

    def result(self) -> SimulationResult:
        """Materialize exact delivery times from the per-period pattern
        log and wrap them in the reference result type.

        Millions of ``period_start + offset`` Fraction additions dominate
        long replays, so for integral period starts the sum is assembled
        directly: offsets are normalized (``gcd(num, den) == 1``), hence
        ``(start * den + num) / den`` is already in lowest terms and the
        general-purpose normalizing constructor can be skipped."""
        delivery_times: Dict[Item, List[object]] = {
            it: [] for it in self._delivery_items}
        num_den: Dict[int, List[Tuple[Item, int, int, int]]] = {}
        for start, pid in zip(self._period_starts, self._period_pattern):
            s_int = start if type(start) is int else (
                start.numerator if isinstance(start, Fraction)
                and start.denominator == 1 else None)
            if _FAST_FRACTION and s_int is not None:
                evs = num_den.get(pid)
                if evs is None:
                    evs = num_den[pid] = [
                        (it, Fraction(off).numerator,
                         Fraction(off).denominator, n)
                        for it, off, n in self._patterns[pid].events]
                for item, num, den, count in evs:
                    t = _raw_fraction(s_int * den + num, den)
                    times = delivery_times[item]
                    if count == 1:
                        times.append(t)
                    else:
                        times.extend([t] * count)
            else:
                for item, off, count in self._patterns[pid].events:
                    t = start + off
                    times = delivery_times[item]
                    for _ in range(count):
                        times.append(t)
        return SimulationResult(schedule=self.schedule,
                                periods=self.periods_run,
                                horizon=self.time,
                                delivery_times=delivery_times,
                                trace=None, errors=[],
                                one_port_violations=[],
                                switches=list(self.switches),
                                abandoned=list(self.abandoned),
                                engine="compiled")
