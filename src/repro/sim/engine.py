"""Minimal discrete-event engine, plus the simulation-engine selector.

A heap of timestamped callbacks.  The periodic executor computes most times
arithmetically, but the engine is what the dynamic baselines and the MPI
façade drive; it also gives tests a place to exercise event ordering
semantics (ties break in scheduling order, never by callback identity).

:func:`resolve_sim_engine` is the single place that decides which
periodic-replay implementation a simulation request runs on — the
per-instance reference executor (:mod:`repro.sim.executor`) or the
vectorized compiled engine (:mod:`repro.sim.compiled`).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

SIM_ENGINES = ("auto", "compiled", "reference")


def resolve_sim_engine(engine: str, schedule, combine=None,
                       record_trace: bool = False) -> str:
    """Pick the replay implementation for one simulation request.

    The selection rule (documented next to the chaining contract in
    ROADMAP.md): ``auto`` picks the compiled engine exactly when the
    replay is *count-exact* — the schedule is pure communication (no
    compute tasks), the semantics carry no combine operator (value-checked
    reductions must flow real payloads through the reference executor),
    the schedule's times are exact rationals, no per-event trace was
    requested, and numpy is importable.  ``compiled`` insists and raises
    with the disqualifying reason; ``reference`` always wins.
    """
    if engine not in SIM_ENGINES:
        raise ValueError(f"unknown sim engine {engine!r}; "
                         f"pick one of {SIM_ENGINES}")
    if engine == "reference":
        return "reference"
    reason = _compiled_unsupported(schedule, combine, record_trace)
    if engine == "compiled":
        if reason is not None:
            raise ValueError(f"engine='compiled' cannot replay "
                             f"{schedule.name!r}: {reason}")
        return "compiled"
    return "reference" if reason is not None else "compiled"


def _compiled_unsupported(schedule, combine, record_trace) -> Optional[str]:
    """Why the compiled engine cannot take this request (None == it can)."""
    if combine is not None:
        return "value-checked semantics (combine operator) need the " \
               "reference executor"
    if schedule.compute:
        return "compute tasks need the reference executor"
    if record_trace:
        return "per-event trace recording needs the reference executor"
    try:
        from repro.sim.compiled import compile_unsupported
    except ImportError:
        return "numpy is not available"
    return compile_unsupported(schedule)


class Engine:
    """Priority-queue event loop with deterministic tie-breaking."""

    def __init__(self) -> None:
        self.now = 0
        self._heap: List[Tuple[object, int, Callable[[], None]]] = []
        self._seq = 0
        self._running = False

    def at(self, time, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._heap, (time, self._seq, fn))
        self._seq += 1

    def after(self, delay, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` from now."""
        self.at(self.now + delay, fn)

    def run(self, until=None) -> object:
        """Process events in time order; stop when empty or past ``until``.

        Returns the final clock value.
        """
        self._running = True
        try:
            while self._heap:
                time, _seq, fn = self._heap[0]
                if until is not None and time > until:
                    self.now = until
                    break
                heapq.heappop(self._heap)
                self.now = time
                fn()
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
        return self.now

    def pending(self) -> int:
        return len(self._heap)

    def reset(self) -> None:
        self.now = 0
        self._heap.clear()
        self._seq = 0
