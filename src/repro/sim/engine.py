"""Minimal discrete-event engine.

A heap of timestamped callbacks.  The periodic executor computes most times
arithmetically, but the engine is what the dynamic baselines and the MPI
façade drive; it also gives tests a place to exercise event ordering
semantics (ties break in scheduling order, never by callback identity).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Tuple


class Engine:
    """Priority-queue event loop with deterministic tie-breaking."""

    def __init__(self) -> None:
        self.now = 0
        self._heap: List[Tuple[object, int, Callable[[], None]]] = []
        self._seq = 0
        self._running = False

    def at(self, time, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._heap, (time, self._seq, fn))
        self._seq += 1

    def after(self, delay, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` from now."""
        self.at(self.now + delay, fn)

    def run(self, until=None) -> object:
        """Process events in time order; stop when empty or past ``until``.

        Returns the final clock value.
        """
        self._running = True
        try:
            while self._heap:
                time, _seq, fn = self._heap[0]
                if until is not None and time > until:
                    self.now = until
                    break
                heapq.heappop(self._heap)
                self.now = time
                fn()
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
        return self.now

    def pending(self) -> int:
        return len(self._heap)

    def reset(self) -> None:
        self.now = 0
        self._heap.clear()
        self._seq = 0
