"""Periodic-schedule replay under the one-port model.

The executor runs a :class:`~repro.core.schedule.PeriodicSchedule` for a
number of periods with *store-and-forward buffers at period granularity*:
an item received (or computed) during period ``p`` becomes usable in period
``p + 1``.  Consequences, all intended:

- The Section 3.4 **initialization phase** emerges by itself: in the first
  periods, downstream edges find empty buffers and ship less; after roughly
  the platform diameter (in periods) every buffer holds one period's worth
  and the execution is exactly periodic — the steady state.
- Every send happens inside its matching slot, so the one-port invariants
  hold **by construction**; the trace validator re-proves it after the fact.
- Message *instances* are tracked individually (FIFO per node and item) with
  real payload values, so reduction results are checked against a
  non-commutative reference — not just counted.

Split messages (Figure 4a) are supported: a transfer may move a fractional
number of messages; an instance completes its hop once cumulative shipped
fraction reaches 1, and partially-shipped instances stay in the pipe.

Pipelined compositions add **chain-credit gating**: when the schedule
carries :class:`repro.core.schedule.ChainLink` contracts, a chained supply
item (e.g. the all-gather sources of a pipelined all-reduce) can only
start a new operation after a matching produced delivery (the
reduce-scatter stage's reduced block) has landed — precedence holds *by
construction*, the pipeline fills during warm-up, and the steady state
sustains the joint LP's common ``TP`` only if the overlap really is
schedulable.  Combined with the per-delivery payload checks this
validates reduced-value correctness under overlap, not just per stage.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.core.schedule import PeriodicSchedule
from repro.sim.operators import SeqConcat
from repro.sim.trace import Trace, TraceEvent, validate_one_port

NodeId = Hashable
Item = Hashable


@dataclass
class Instance:
    """A concrete message/value instance flowing through the platform."""

    item: Item
    seq: int
    value: object


@dataclass
class SimulationResult:
    """Outcome of replaying a schedule.

    ``delivery_times[item]`` lists completion times of successive instances
    of that delivery item (seq order).  ``errors`` collects correctness
    problems (wrong value, out-of-order sequence); ``one_port_violations``
    must be empty for any schedule this library produced.
    """

    schedule: PeriodicSchedule
    periods: int
    horizon: object
    delivery_times: Dict[Item, List[object]]
    trace: Optional[Trace]
    errors: List[str] = field(default_factory=list)
    one_port_violations: List[str] = field(default_factory=list)

    @property
    def correct(self) -> bool:
        return not self.errors and not self.one_port_violations

    def completed_ops(self, within=None) -> int:
        """Operations fully completed (scatter: every target served).

        For schedules with several delivery items (scatter targets, reduce
        trees with round-robin stamps), an operation is complete when each
        delivery item has produced one more instance — for scatter this is
        exactly "all targets received message #s"; for reduce the deliveries
        of distinct trees are independent operations and are summed.  The
        schedule can pin the mode explicitly via
        ``PeriodicSchedule.delivery_mode`` (broadcast slices are summed like
        reduce trees even though no compute tasks exist).
        """
        if within is None:
            within = self.horizon
        counts = {item: sum(1 for t in ts if t <= within)
                  for item, ts in self.delivery_times.items()}
        if not counts:
            return 0
        mode = self.schedule.delivery_mode
        if mode is None:  # legacy inference: compute => independent streams
            mode = "sum" if self.schedule.compute else "min"
        if mode == "sum":
            return sum(counts.values())
        return min(counts.values())  # scatter/gossip: all items per op

    def measured_throughput(self) -> float:
        if not self.horizon:
            return 0.0
        return self.completed_ops() / float(self.horizon)


def simulate_schedule(schedule: PeriodicSchedule,
                      supplies: Dict[Tuple[NodeId, Item], Callable[[int], object]],
                      n_periods: int,
                      combine: Optional[Callable[[object, object], object]] = None,
                      expected: Optional[Callable[[Item, int], object]] = None,
                      record_trace: bool = True) -> SimulationResult:
    """Replay ``schedule`` for ``n_periods``.

    Parameters
    ----------
    supplies:
        ``(node, item) -> factory(seq)``: infinite stamped supply of
        ``item`` at ``node`` (scatter source messages, reduce leaf values).
    combine:
        Binary operator for compute tasks (left, right) — required when the
        schedule has compute tasks.
    expected:
        ``(delivery item, seq) -> expected value``; mismatches are recorded
        in ``errors``.
    """
    T = schedule.period
    avail: Dict[Tuple[NodeId, Item], deque] = {}
    arriving: Dict[Tuple[NodeId, Item], List[Instance]] = {}
    supply_seq: Dict[Tuple[NodeId, Item], int] = {}
    # chained-supply credit gating (pipelined compositions): a supply
    # item listed in a ChainLink may only start a new operation once a
    # matching produced delivery has landed — one credit per operation,
    # spent on the first draw of each op index per consumption stream.
    # Credits carry their mint time: a draw during a slot starting at
    # time `s` can only spend credits minted at or before `s`, so a
    # chained value physically lands before its re-emission departs
    # (retimed schedules achieve the hand-off within one period).
    links = tuple(schedule.chain_links or ())
    credit: List[List[object]] = [[] for _ in links]  # sorted mint times
    stream_next: List[Dict[Hashable, int]] = [{} for _ in links]
    produced_link: Dict[Item, int] = {}
    consumed_link: Dict[Tuple[NodeId, Item], Tuple[int, Hashable]] = {}
    for li, ln in enumerate(links):
        for it in ln.produced:
            produced_link[it] = li
        for it, stream in ln.consumed:
            consumed_link[(ln.consumer, it)] = (li, stream)
    # per (src, dst, item): instance partially shipped and fraction done
    pipe: Dict[Tuple[NodeId, NodeId, Item], Tuple[Instance, object]] = {}
    delivery_times: Dict[Item, List[object]] = {item: [] for item in schedule.deliveries}
    delivery_seen: Dict[Item, set] = {item: set() for item in schedule.deliveries}
    trace = Trace() if record_trace else None
    errors: List[str] = []
    # Reduce dataflows are per-tree FIFO chains, so arrivals must be in seq
    # order; scatter/gossip commodities may split across routes with
    # different latencies, which legally reorders distinct messages.
    strict_order = bool(schedule.compute)

    def _spendable(li: int, now) -> int:
        """Index of the earliest credit already minted by ``now``; -1 if
        none (credit lists are kept in mint order)."""
        times = credit[li]
        if times and times[0] <= now:
            return 0
        return -1

    def take(node: NodeId, item: Item, now=0) -> Optional[Instance]:
        """Pop the oldest available instance (drawing from supply if any).

        ``now`` is the draw time (slot start for transfers, task start
        for computations) — chain-gated supplies only spend credits
        minted at or before it."""
        key = (node, item)
        q = avail.get(key)
        if q:
            return q.popleft()
        factory = supplies.get(key)
        if factory is not None:
            seq = supply_seq.get(key, 0)
            gate = consumed_link.get(key)
            if gate is not None:
                li, stream = gate
                if seq >= stream_next[li].get(stream, 0):
                    # first draw of operation `seq` on this stream: needs
                    # a landed production (later draws of the same op —
                    # sibling root edges of one arborescence — are free)
                    idx = _spendable(li, now)
                    if idx < 0:
                        return None
                    credit[li].pop(idx)
                    stream_next[li][stream] = seq + 1
            supply_seq[key] = seq + 1
            return Instance(item=item, seq=seq, value=factory(seq))
        return None

    def peek_count(node: NodeId, item: Item, now=0) -> bool:
        key = (node, item)
        if supplies.get(key) is not None:
            gate = consumed_link.get(key)
            if gate is None:
                return True
            li, stream = gate
            return (supply_seq.get(key, 0) < stream_next[li].get(stream, 0)
                    or _spendable(li, now) >= 0)
        q = avail.get(key)
        return bool(q)

    def land(node: NodeId, inst: Instance, time) -> None:
        """Instance arrives at ``node`` (usable next period); count deliveries."""
        item = inst.item
        reps = schedule.replicas.get((node, item)) if schedule.replicas \
            else None
        if reps is not None:
            # content-divisible fan-out (broadcast arborescences): the
            # landed instance re-materializes as the mapped items — copies
            # for each child edge plus this node's own delivery token
            for rep in reps:
                land(node, Instance(item=rep, seq=inst.seq, value=inst.value),
                     time)
            return
        if schedule.deliveries.get(item) == node:
            li = produced_link.get(item)
            if li is not None:
                # one more chained operation available from `time` on
                insort(credit[li], time)
            seen = delivery_seen[item]
            if inst.seq in seen:
                errors.append(f"delivery {item!r} seq {inst.seq} duplicated")
            if strict_order and inst.seq != len(seen):
                errors.append(f"delivery {item!r} out of order: got seq "
                              f"{inst.seq}, expected {len(seen)}")
            seen.add(inst.seq)
            if expected is not None:
                exp = expected(item, inst.seq)
                if exp is not None and inst.value != exp:
                    errors.append(f"delivery {item!r} seq {inst.seq} has wrong "
                                  f"value {inst.value!r} != {exp!r}")
            delivery_times[item].append(time)
            return  # absorbed
        arriving.setdefault((node, item), []).append(inst)

    for p in range(n_periods):
        p0 = p * T
        # promote last period's arrivals
        for key, lst in arriving.items():
            avail.setdefault(key, deque()).extend(lst)
        arriving = {}

        # --- communications: slots in order ---
        offset = 0
        for slot in schedule.slots:
            slot_start = p0 + offset
            pair_off: Dict[Tuple[NodeId, NodeId], object] = {}
            for tr in slot.transfers:
                if tr.units <= 0:
                    continue
                unit_time = Fraction(tr.time) / Fraction(tr.units) \
                    if not isinstance(tr.time, float) else tr.time / tr.units
                pk = (tr.src, tr.dst, tr.item)
                inflight = pipe.get(pk)
                moved = 0
                budget = tr.units
                completed: List[Instance] = []
                if inflight is not None:
                    inst, done = inflight
                    need = 1 - done
                    step = need if need <= budget else budget
                    done = done + step
                    budget = budget - step
                    moved = moved + step
                    if done >= 1:
                        completed.append(inst)
                        pipe.pop(pk)
                    else:
                        pipe[pk] = (inst, done)
                while budget > 0:
                    inst = take(tr.src, tr.item, now=slot_start)
                    if inst is None:
                        break
                    if budget >= 1:
                        completed.append(inst)
                        budget = budget - 1
                        moved = moved + 1
                    else:
                        pipe[pk] = (inst, budget)
                        moved = moved + budget
                        budget = 0
                if moved > 0:
                    start = p0 + offset + pair_off.get((tr.src, tr.dst), 0)
                    dur = moved * unit_time
                    end = start + dur
                    pair_off[(tr.src, tr.dst)] = \
                        pair_off.get((tr.src, tr.dst), 0) + dur
                    if trace is not None:
                        trace.add(TraceEvent(kind="send", node=tr.src,
                                             peer=tr.dst, start=start, end=end,
                                             item=tr.item))
                    for inst in completed:
                        land(tr.dst, inst, end)
            offset = offset + slot.duration

        # --- computations: sequential per node, overlapping comms ---
        for node, tasks in schedule.compute.items():
            cpu_off = 0
            for ct in tasks:
                for _rep in range(ct.count):
                    left_item, right_item = ct.inputs
                    task_start = p0 + cpu_off
                    if not (peek_count(node, left_item, now=task_start) and
                            peek_count(node, right_item, now=task_start)):
                        break  # warm-up: inputs not buffered yet
                    left = take(node, left_item, now=task_start)
                    if left is None:
                        break
                    right = take(node, right_item, now=task_start)
                    if right is None:
                        # two chain-gated inputs can race for one credit:
                        # peek saw it, the left take() spent it — put the
                        # drawn instance back and retry next period
                        avail.setdefault((node, left_item),
                                         deque()).appendleft(left)
                        break
                    if left.seq != right.seq:
                        errors.append(
                            f"task at {node!r} pairing seq {left.seq} with "
                            f"{right.seq} for {ct.output!r}")
                    if combine is None:
                        raise ValueError("schedule has compute tasks but no "
                                         "combine operator was given")
                    out = Instance(item=ct.output, seq=left.seq,
                                   value=combine(left.value, right.value))
                    start = p0 + cpu_off
                    end = start + ct.unit_time
                    cpu_off = cpu_off + ct.unit_time
                    if trace is not None:
                        trace.add(TraceEvent(kind="compute", node=node,
                                             start=start, end=end,
                                             item=ct.output))
                    land(node, out, end)

    horizon = n_periods * T
    violations = validate_one_port(trace) if trace is not None else []
    if trace is not None:
        for item, times in delivery_times.items():
            node = schedule.deliveries[item]
            for t in times:
                trace.add(TraceEvent(kind="delivery", node=node, start=t,
                                     end=t, item=item))
    return SimulationResult(schedule=schedule, periods=n_periods,
                            horizon=horizon, delivery_times=delivery_times,
                            trace=trace, errors=errors,
                            one_port_violations=violations)


# ----------------------------------------------------------------------
# registry dispatch + compatibility wrappers
# ----------------------------------------------------------------------

def simulate_collective(schedule: PeriodicSchedule, problem, n_periods: int,
                        collective: Optional[str] = None, op=None,
                        record_trace: bool = True) -> SimulationResult:
    """Replay any registered collective's schedule.

    The spec (resolved from the problem type, or named explicitly via
    ``collective``) supplies the item semantics: where stamped instances
    enter the platform, what each delivery must contain, and the combine
    operator for compute tasks.  ``op`` overrides the reduction operator
    for computing collectives (default :class:`SeqConcat`).
    """
    from repro.collectives import resolve_collective

    spec = resolve_collective(problem, collective)
    sem = spec.simulation(schedule, problem, op=op)
    return simulate_schedule(schedule, sem.supplies, n_periods,
                             combine=sem.combine, expected=sem.expected,
                             record_trace=record_trace)


def chain_semantics(stage_semantics):
    """Merge per-stage item semantics into one composite ``SimSemantics``.

    ``stage_semantics`` is a sequence of ``(stage, SimSemantics)`` pairs
    whose items live in the *un-tagged* per-stage namespace (see
    :func:`repro.core.schedule.stage_view`); the merged semantics address
    the composite schedule's tagged items
    (:func:`repro.core.schedule.tag_item`).  At most one stage may carry a
    combine operator — composing two different reduction operators in one
    schedule has no defined payload algebra.

    For *pipelined* composites the merged ``expected`` checks run under
    genuine overlap: the chained stage's supplies are credit-gated by the
    schedule's :attr:`~repro.core.schedule.PeriodicSchedule.chain_links`
    (see :func:`simulate_schedule`), so every delivered payload that the
    per-stage ``expected`` validates was emitted only after the producing
    stage actually landed the corresponding value.
    """
    from repro.collectives.base import SimSemantics
    from repro.core.schedule import tag_item, untag_item

    supplies = {}
    expected_by_stage = {}
    combine = None
    for stage, sem in stage_semantics:
        for (node, item), factory in sem.supplies.items():
            supplies[(node, tag_item(stage, item))] = factory
        if sem.expected is not None:
            expected_by_stage[stage] = sem.expected
        if sem.combine is not None:
            if combine is not None and combine is not sem.combine:
                raise ValueError("cannot chain two stages with different "
                                 "combine operators")
            combine = sem.combine

    def expected(item, seq):
        tagged = untag_item(item)
        if tagged is None:
            return None
        fn = expected_by_stage.get(tagged[0])
        return fn(tagged[1], seq) if fn is not None else None

    return SimSemantics(supplies=supplies,
                        expected=expected if expected_by_stage else None,
                        combine=combine)


def simulate_scatter(schedule: PeriodicSchedule, problem, n_periods: int,
                     record_trace: bool = True) -> SimulationResult:
    """Replay a scatter schedule: source supplies ``(k, seq)`` payloads and
    each delivery is checked for content and order."""
    return simulate_collective(schedule, problem, n_periods,
                               collective="scatter", record_trace=record_trace)


def simulate_gossip(schedule: PeriodicSchedule, problem, n_periods: int,
                    record_trace: bool = True) -> SimulationResult:
    """Replay a gossip schedule (supply at each emitting source)."""
    return simulate_collective(schedule, problem, n_periods,
                               collective="gossip", record_trace=record_trace)


def simulate_reduce(schedule: PeriodicSchedule, problem, n_periods: int,
                    op=SeqConcat, record_trace: bool = True) -> SimulationResult:
    """Replay a reduce schedule with a non-commutative operator.

    Leaf values are stamped per tree; every delivered ``v[0, n-1]`` must
    equal the sequential left-to-right reference reduction.
    """
    return simulate_collective(schedule, problem, n_periods,
                               collective="reduce", op=op,
                               record_trace=record_trace)
