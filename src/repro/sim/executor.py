"""Periodic-schedule replay under the one-port model.

The executor runs a :class:`~repro.core.schedule.PeriodicSchedule` for a
number of periods with *store-and-forward buffers at period granularity*:
an item received (or computed) during period ``p`` becomes usable in period
``p + 1``.  Consequences, all intended:

- The Section 3.4 **initialization phase** emerges by itself: in the first
  periods, downstream edges find empty buffers and ship less; after roughly
  the platform diameter (in periods) every buffer holds one period's worth
  and the execution is exactly periodic — the steady state.
- Every send happens inside its matching slot, so the one-port invariants
  hold **by construction**; the trace validator re-proves it after the fact.
- Message *instances* are tracked individually (FIFO per node and item) with
  real payload values, so reduction results are checked against a
  non-commutative reference — not just counted.

Split messages (Figure 4a) are supported: a transfer may move a fractional
number of messages; an instance completes its hop once cumulative shipped
fraction reaches 1, and partially-shipped instances stay in the pipe.

Pipelined compositions add **chain-credit gating**: when the schedule
carries :class:`repro.core.schedule.ChainLink` contracts, a chained supply
item (e.g. the all-gather sources of a pipelined all-reduce) can only
start a new operation after a matching produced delivery (the
reduce-scatter stage's reduced block) has landed — precedence holds *by
construction*, the pipeline fills during warm-up, and the steady state
sustains the joint LP's common ``TP`` only if the overlap really is
schedulable.  Combined with the per-delivery payload checks this
validates reduced-value correctness under overlap, not just per stage.

The executor is a long-lived object (:class:`ScheduleExecutor`) so that
**fault injection** (:mod:`repro.sim.faults`) can reach into a running
replay: links and nodes can die between periods (:meth:`fail_link`,
:meth:`fail_node` — in-flight transfers on the dead resource abort back
to the sender's retry queue or are written off), the broken schedule is
detectable (:attr:`blocked_last_period` counts slot transfers that hit a
dead resource), and a re-solved schedule can be swapped in at a period
boundary (:meth:`switch_schedule`) with an exactly-once hand-off of all
buffered instances.  :func:`simulate_schedule` remains the thin
fault-free wrapper with the historical behaviour.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.core.schedule import PeriodicSchedule
from repro.sim.operators import SeqConcat
from repro.sim.trace import Trace, TraceEvent, validate_one_port

NodeId = Hashable
Item = Hashable


@dataclass
class Instance:
    """A concrete message/value instance flowing through the platform."""

    item: Item
    seq: int
    value: object


@dataclass
class SimulationResult:
    """Outcome of replaying a schedule.

    ``delivery_times[item]`` lists completion times of successive instances
    of that delivery item (seq order).  ``errors`` collects correctness
    problems (wrong value, out-of-order sequence); ``one_port_violations``
    must be empty for any schedule this library produced.  Faulted runs
    additionally report ``switches`` (schedule swaps, with their absolute
    time and hand-off mode) and ``abandoned`` (instances written off when a
    node died or a restart-mode switch discarded a broken pipeline's
    in-flight state — every lost instance is accounted for by name).
    """

    schedule: PeriodicSchedule
    periods: int
    horizon: object
    delivery_times: Dict[Item, List[object]]
    trace: Optional[Trace]
    errors: List[str] = field(default_factory=list)
    one_port_violations: List[str] = field(default_factory=list)
    switches: List[Dict[str, object]] = field(default_factory=list)
    abandoned: List[str] = field(default_factory=list)
    #: Which executor produced this result ("reference" or "compiled").
    engine: str = "reference"

    @property
    def correct(self) -> bool:
        return not self.errors and not self.one_port_violations

    def completed_ops(self, within=None) -> int:
        """Operations fully completed (scatter: every target served).

        For schedules with several delivery items (scatter targets, reduce
        trees with round-robin stamps), an operation is complete when each
        delivery item has produced one more instance — for scatter this is
        exactly "all targets received message #s"; for reduce the deliveries
        of distinct trees are independent operations and are summed.  The
        schedule can pin the mode explicitly via
        ``PeriodicSchedule.delivery_mode`` (broadcast slices are summed like
        reduce trees even though no compute tasks exist).
        """
        if within is None:
            within = self.horizon
        counts = {item: sum(1 for t in ts if t <= within)
                  for item, ts in self.delivery_times.items()}
        if not counts:
            return 0
        mode = self.schedule.delivery_mode
        if mode is None:  # legacy inference: compute => independent streams
            mode = "sum" if self.schedule.compute else "min"
        if mode == "sum":
            return sum(counts.values())
        return min(counts.values())  # scatter/gossip: all items per op

    def measured_throughput(self):
        """Completed operations per time-unit over the whole horizon.

        Exact (a :class:`~fractions.Fraction`) whenever the schedule's
        times are exact, so steady-state assertions can compare ``==``
        against rational LP optima instead of round-tripping through
        float.  Float-timed schedules still yield a float.
        """
        if not self.horizon:
            return Fraction(0)
        ops = self.completed_ops()
        if isinstance(self.horizon, float):
            return ops / self.horizon
        return Fraction(ops) / Fraction(self.horizon)

    def steady_window_throughput(self, periods: int = 8):
        """Exact sustained rate over the trailing ``periods`` periods.

        Counts deliveries with ``start < t <= end`` (a landing exactly on
        a period boundary belongs to the window that ends there), applies
        the schedule's ``delivery_mode``, and divides by the window length
        — all in Fractions for exact-timed schedules.
        """
        if periods <= 0 or self.periods == 0:
            raise ValueError("need a positive window and a non-empty run")
        T = self.schedule.period
        end = self.horizon
        start = end - periods * T
        counts = {item: sum(1 for t in self.delivery_times.get(item, ())
                            if start < t <= end)
                  for item in self.schedule.deliveries}
        if not counts:
            return Fraction(0)
        mode = self.schedule.delivery_mode
        if mode is None:
            mode = "sum" if self.schedule.compute else "min"
        ops = sum(counts.values()) if mode == "sum" else min(counts.values())
        if isinstance(T, float):
            return ops / (periods * T)
        return Fraction(ops) / (Fraction(periods) * Fraction(T))


def carry_compatible(old: PeriodicSchedule, new: PeriodicSchedule) -> bool:
    """Whether buffered state may be carried across ``old -> new``.

    Both executors use the same rule at a schedule switch: carry only
    between pure-communication schedules (no compute, no chain links, no
    replica fan-out) whose shared delivery items keep their destination —
    else carried seq bookkeeping would count deliveries at the wrong node.
    """
    for s in (old, new):
        if s.compute or s.chain_links or s.replicas:
            return False
    for item, node in new.deliveries.items():
        if item in old.deliveries and old.deliveries[item] != node:
            return False
    return True


class ScheduleExecutor:
    """Stateful periodic replay: one period at a time, faults welcome.

    All buffer state lives on the instance so that callers (the fault
    harness, tests) can advance the clock period by period, kill links
    or nodes in between, observe whether the current schedule is still
    making progress, and hot-swap a re-solved schedule.

    Instance draws are strictly ordered **retry -> buffered -> supply**:
    an instance that was drawn but could not be used (credit race on a
    chain-gated pair, aborted transfer on a dead link, drained pipe at a
    schedule switch) goes to the explicit FIFO ``retry`` queue and is
    re-issued before anything else — deterministically, and without
    minting a duplicate from the supply.  ``peek_count`` follows the
    same order, so a node with a parked instance is never reported
    starved just because its supply gate is shut.
    """

    def __init__(self, schedule: PeriodicSchedule,
                 supplies: Dict[Tuple[NodeId, Item], Callable[[int], object]],
                 combine: Optional[Callable[[object, object], object]] = None,
                 expected: Optional[Callable[[Item, int], object]] = None,
                 record_trace: bool = True):
        self.avail: Dict[Tuple[NodeId, Item], deque] = {}
        self.retry: Dict[Tuple[NodeId, Item], deque] = {}
        self.arriving: Dict[Tuple[NodeId, Item], List[Instance]] = {}
        self.supply_seq: Dict[Tuple[NodeId, Item], int] = {}
        # per (src, dst, item): instance partially shipped and fraction done
        self.pipe: Dict[Tuple[NodeId, NodeId, Item],
                        Tuple[Instance, object]] = {}
        self.delivery_times: Dict[Item, List[object]] = {}
        self.delivery_seen: Dict[Item, set] = {}
        self.trace: Optional[Trace] = Trace() if record_trace else None
        self.errors: List[str] = []
        self.abandoned: List[str] = []
        self.switches: List[Dict[str, object]] = []
        self.dead_links: set = set()
        self.dead_nodes: set = set()
        #: Slot transfers that hit a dead link/node in the last completed
        #: period — nonzero means the current schedule references a dead
        #: resource, i.e. it is broken and a replan is due.
        self.blocked_last_period: int = 0
        self.time = 0          # absolute clock: start of the next period
        self.periods_run = 0
        self._install(schedule, supplies, combine, expected)

    # -- schedule installation ------------------------------------------

    def _install(self, schedule: PeriodicSchedule, supplies, combine,
                 expected) -> None:
        self.schedule = schedule
        self.supplies = dict(supplies)
        self.combine = combine
        self.expected = expected
        # chained-supply credit gating (pipelined compositions): a supply
        # item listed in a ChainLink may only start a new operation once a
        # matching produced delivery has landed — one credit per operation,
        # spent on the first draw of each op index per consumption stream.
        # Credits carry their mint time: a draw during a slot starting at
        # time `s` can only spend credits minted at or before `s`, so a
        # chained value physically lands before its re-emission departs
        # (retimed schedules achieve the hand-off within one period).
        self.links = tuple(schedule.chain_links or ())
        self.credit: List[List[object]] = [[] for _ in self.links]
        self.stream_next: List[Dict[Hashable, int]] = [{} for _ in self.links]
        self.produced_link, self.consumed_link = schedule.chain_maps()
        # Reduce dataflows are per-tree FIFO chains, so arrivals must be in
        # seq order; scatter/gossip commodities may split across routes with
        # different latencies, which legally reorders distinct messages.
        self.strict_order = bool(schedule.compute)
        for item in schedule.deliveries:
            self.delivery_times.setdefault(item, [])
            self.delivery_seen.setdefault(item, set())
        # where each item's fresh instances enter the platform (for
        # relocating stranded buffers at a carry-mode switch); ambiguous
        # items (several supply nodes) are left unmapped
        self._supply_node: Dict[Item, NodeId] = {}
        ambiguous = set()
        for (node, item) in self.supplies:
            if item in self._supply_node and self._supply_node[item] != node:
                ambiguous.add(item)
            self._supply_node.setdefault(item, node)
        for item in ambiguous:
            self._supply_node.pop(item, None)

    # -- instance plumbing ----------------------------------------------

    def _spendable(self, li: int, now) -> int:
        """Index of the earliest credit already minted by ``now``; -1 if
        none (credit lists are kept in mint order)."""
        times = self.credit[li]
        if times and times[0] <= now:
            return 0
        return -1

    def take(self, node: NodeId, item: Item, now=0) -> Optional[Instance]:
        """Pop the oldest available instance (drawing from supply if any).

        ``now`` is the draw time (slot start for transfers, task start
        for computations) — chain-gated supplies only spend credits
        minted at or before it.  Parked retry instances go out first
        (they already spent their credit / supply draw)."""
        key = (node, item)
        q = self.retry.get(key)
        if q:
            return q.popleft()
        q = self.avail.get(key)
        if q:
            return q.popleft()
        factory = self.supplies.get(key)
        if factory is not None:
            seq = self.supply_seq.get(key, 0)
            gate = self.consumed_link.get(key)
            if gate is not None:
                li, stream = gate
                if seq >= self.stream_next[li].get(stream, 0):
                    # first draw of operation `seq` on this stream: needs
                    # a landed production (later draws of the same op —
                    # sibling root edges of one arborescence — are free)
                    idx = self._spendable(li, now)
                    if idx < 0:
                        return None
                    self.credit[li].pop(idx)
                    self.stream_next[li][stream] = seq + 1
            self.supply_seq[key] = seq + 1
            return Instance(item=item, seq=seq, value=factory(seq))
        return None

    def peek_count(self, node: NodeId, item: Item, now=0) -> bool:
        """True when :meth:`take` would succeed — checked in the same
        retry -> buffered -> supply order, so buffered instances satisfy
        the peek even when the supply's chain gate is currently shut."""
        key = (node, item)
        if self.retry.get(key) or self.avail.get(key):
            return True
        if self.supplies.get(key) is not None:
            gate = self.consumed_link.get(key)
            if gate is None:
                return True
            li, stream = gate
            return (self.supply_seq.get(key, 0)
                    < self.stream_next[li].get(stream, 0)
                    or self._spendable(li, now) >= 0)
        return False

    def park(self, node: NodeId, item: Item, inst: Instance) -> None:
        """Return a drawn-but-unused instance to the head of the line."""
        self.retry.setdefault((node, item), deque()).append(inst)

    def land(self, node: NodeId, inst: Instance, time) -> None:
        """Instance arrives at ``node`` (usable next period); count
        deliveries."""
        item = inst.item
        schedule = self.schedule
        reps = schedule.replicas.get((node, item)) if schedule.replicas \
            else None
        if reps is not None:
            # content-divisible fan-out (broadcast arborescences): the
            # landed instance re-materializes as the mapped items — copies
            # for each child edge plus this node's own delivery token
            for rep in reps:
                self.land(node,
                          Instance(item=rep, seq=inst.seq, value=inst.value),
                          time)
            return
        if schedule.deliveries.get(item) == node:
            li = self.produced_link.get(item)
            if li is not None:
                # one more chained operation available from `time` on
                insort(self.credit[li], time)
            seen = self.delivery_seen[item]
            if inst.seq in seen:
                self.errors.append(
                    f"delivery {item!r} seq {inst.seq} duplicated")
            if self.strict_order and inst.seq != len(seen):
                self.errors.append(
                    f"delivery {item!r} out of order: got seq "
                    f"{inst.seq}, expected {len(seen)}")
            seen.add(inst.seq)
            if self.expected is not None:
                exp = self.expected(item, inst.seq)
                if exp is not None and inst.value != exp:
                    self.errors.append(
                        f"delivery {item!r} seq {inst.seq} has wrong "
                        f"value {inst.value!r} != {exp!r}")
            self.delivery_times[item].append(time)
            return  # absorbed
        self.arriving.setdefault((node, item), []).append(inst)

    # -- one period ------------------------------------------------------

    def run_period(self) -> int:
        """Advance one period; returns the number of deliveries landed."""
        schedule = self.schedule
        p0 = self.time
        delivered_before = sum(len(ts) for ts in self.delivery_times.values())
        blocked = 0
        # promote last period's arrivals
        for key, lst in self.arriving.items():
            self.avail.setdefault(key, deque()).extend(lst)
        self.arriving = {}

        # --- communications: slots in order ---
        offset = 0
        for slot in schedule.slots:
            slot_start = p0 + offset
            pair_off: Dict[Tuple[NodeId, NodeId], object] = {}
            for tr in slot.transfers:
                if tr.units <= 0:
                    continue
                if ((tr.src, tr.dst) in self.dead_links
                        or tr.src in self.dead_nodes
                        or tr.dst in self.dead_nodes):
                    blocked += 1
                    continue
                unit_time = Fraction(tr.time) / Fraction(tr.units) \
                    if not isinstance(tr.time, float) else tr.time / tr.units
                pk = (tr.src, tr.dst, tr.item)
                inflight = self.pipe.get(pk)
                moved = 0
                budget = tr.units
                completed: List[Instance] = []
                if inflight is not None:
                    inst, done = inflight
                    need = 1 - done
                    step = need if need <= budget else budget
                    done = done + step
                    budget = budget - step
                    moved = moved + step
                    if done >= 1:
                        completed.append(inst)
                        self.pipe.pop(pk)
                    else:
                        self.pipe[pk] = (inst, done)
                while budget > 0:
                    inst = self.take(tr.src, tr.item, now=slot_start)
                    if inst is None:
                        break
                    if budget >= 1:
                        completed.append(inst)
                        budget = budget - 1
                        moved = moved + 1
                    else:
                        self.pipe[pk] = (inst, budget)
                        moved = moved + budget
                        budget = 0
                if moved > 0:
                    start = p0 + offset + pair_off.get((tr.src, tr.dst), 0)
                    dur = moved * unit_time
                    end = start + dur
                    pair_off[(tr.src, tr.dst)] = \
                        pair_off.get((tr.src, tr.dst), 0) + dur
                    if self.trace is not None:
                        self.trace.add(TraceEvent(kind="send", node=tr.src,
                                                  peer=tr.dst, start=start,
                                                  end=end, item=tr.item))
                    for inst in completed:
                        self.land(tr.dst, inst, end)
            offset = offset + slot.duration

        # --- computations: sequential per node, overlapping comms ---
        for node, tasks in schedule.compute.items():
            if node in self.dead_nodes:
                blocked += sum(ct.count for ct in tasks)
                continue
            cpu_off = 0
            for ct in tasks:
                for _rep in range(ct.count):
                    left_item, right_item = ct.inputs
                    task_start = p0 + cpu_off
                    if not (self.peek_count(node, left_item, now=task_start)
                            and self.peek_count(node, right_item,
                                                now=task_start)):
                        break  # warm-up: inputs not buffered yet
                    left = self.take(node, left_item, now=task_start)
                    if left is None:
                        break
                    right = self.take(node, right_item, now=task_start)
                    if right is None:
                        # two chain-gated inputs can race for one credit:
                        # peek saw it, the left take() spent it — park the
                        # drawn instance and retry next period
                        self.park(node, left_item, left)
                        break
                    if left.seq != right.seq:
                        self.errors.append(
                            f"task at {node!r} pairing seq {left.seq} with "
                            f"{right.seq} for {ct.output!r}")
                    if self.combine is None:
                        raise ValueError("schedule has compute tasks but no "
                                         "combine operator was given")
                    out = Instance(item=ct.output, seq=left.seq,
                                   value=self.combine(left.value, right.value))
                    start = p0 + cpu_off
                    end = start + ct.unit_time
                    cpu_off = cpu_off + ct.unit_time
                    if self.trace is not None:
                        self.trace.add(TraceEvent(kind="compute", node=node,
                                                  start=start, end=end,
                                                  item=ct.output))
                    self.land(node, out, end)

        self.blocked_last_period = blocked
        self.time = p0 + schedule.period
        self.periods_run += 1
        return (sum(len(ts) for ts in self.delivery_times.values())
                - delivered_before)

    # -- fault injection -------------------------------------------------

    def fail_link(self, src: NodeId, dst: NodeId) -> None:
        """Kill the directed link; the in-flight transfer (if any) aborts
        and its instance returns to the sender's retry queue — nothing is
        lost, nothing is double-delivered (only completed hops land)."""
        self.dead_links.add((src, dst))
        for pk in [pk for pk in self.pipe if pk[0] == src and pk[1] == dst]:
            inst, _done = self.pipe.pop(pk)
            self.park(src, pk[2], inst)

    def fail_node(self, node: NodeId) -> None:
        """Kill a node: its buffered and in-flight outbound instances are
        written off (accounted in ``abandoned``); inbound in-flight
        instances abort back to their senders' retry queues."""
        self.dead_nodes.add(node)
        for pk in [pk for pk in self.pipe
                   if pk[0] == node or pk[1] == node]:
            inst, _done = self.pipe.pop(pk)
            if pk[1] == node:  # inbound: sender still holds the instance
                self.park(pk[0], pk[2], inst)
            else:
                self.abandoned.append(
                    f"{pk[2]!r} seq {inst.seq} in flight from dead "
                    f"{node!r}")
        for store in (self.avail, self.retry):
            for key in [k for k in store if k[0] == node]:
                for inst in store.pop(key):
                    self.abandoned.append(
                        f"{key[1]!r} seq {inst.seq} buffered at dead "
                        f"{node!r}")
        for key in [k for k in self.arriving if k[0] == node]:
            for inst in self.arriving.pop(key):
                self.abandoned.append(
                    f"{key[1]!r} seq {inst.seq} arriving at dead {node!r}")
        for key in [k for k in self.supplies if k[0] == node]:
            del self.supplies[key]
            self._supply_node.pop(key[1], None)

    # -- schedule switch -------------------------------------------------

    def _carry_compatible(self, new: PeriodicSchedule) -> bool:
        return carry_compatible(self.schedule, new)

    def _relocate_stranded(self) -> None:
        """Carry-mode hand-off: any buffered instance at a node the new
        schedule never sends from (for that item) is walked back to the
        item's supply node for re-routing; items with no surviving route
        (sacrificed targets) are written off explicitly."""
        sends = {(tr.src, tr.item) for slot in self.schedule.slots
                 for tr in slot.transfers if tr.units > 0}
        for store in (self.avail, self.retry):
            for key in list(store):
                q = store.get(key)
                if not q or key in sends:
                    continue
                node, item = key
                if self.schedule.deliveries.get(item) == node:
                    continue  # already home (shouldn't buffer, but safe)
                home = self._supply_node.get(item)
                if (home is not None and home != node
                        and (home, item) in sends
                        and home not in self.dead_nodes):
                    dest = self.retry.setdefault((home, item), deque())
                    while q:
                        dest.append(q.popleft())
                else:
                    while q:
                        inst = q.popleft()
                        self.abandoned.append(
                            f"{item!r} seq {inst.seq} stranded at {node!r}")

    def switch_schedule(self, schedule: PeriodicSchedule, supplies,
                        combine=None, expected=None,
                        mode: Optional[str] = None) -> str:
        """Swap in a re-solved schedule at the current period boundary.

        Two hand-off modes:

        - ``"carry"`` (pure-communication schedules, e.g. scatter): all
          buffered instances and sequence bookkeeping survive; in-flight
          partial shipments drain back to their senders and stranded
          buffers are relocated to their supply node — every instance is
          delivered exactly once across the transition (re-ordering is
          fine: these schedules don't require strict delivery order).
        - ``"restart"`` (computing/chained schedules): a broken pipeline's
          half-reduced state cannot be grafted onto a different tree
          shape, so buffered instances are *written off explicitly* into
          ``abandoned`` and the new schedule starts a fresh operation
          epoch (sequence numbers restart; nothing is silently lost —
          the abandonment ledger accounts for every instance).

        ``mode=None`` picks ``"carry"`` exactly when both schedules are
        carry-compatible (no compute, no chain links, no replica fan-out,
        shared delivery items keep their destination).  Returns the mode
        used.
        """
        # drain in-flight partial shipments back to their senders: only a
        # completed hop ever lands, so re-sending from scratch cannot
        # double-deliver
        for pk in list(self.pipe):
            inst, _done = self.pipe.pop(pk)
            self.park(pk[0], pk[2], inst)
        # promote arrivals so the hand-off sees every live instance
        for key, lst in self.arriving.items():
            self.avail.setdefault(key, deque()).extend(lst)
        self.arriving = {}

        if mode is None:
            mode = "carry" if self._carry_compatible(schedule) else "restart"
        elif mode not in ("carry", "restart"):
            raise ValueError(f"unknown switch mode {mode!r}")

        if mode == "restart":
            for store in (self.avail, self.retry):
                for (node, item), q in store.items():
                    for inst in q:
                        self.abandoned.append(
                            f"{item!r} seq {inst.seq} written off at "
                            f"{node!r} (schedule restart)")
            self.avail = {}
            self.retry = {}
            self.supply_seq = {}
            self._install(schedule, supplies, combine, expected)
            # fresh operation epoch: the new schedule's streams restart at
            # seq 0, so per-item dedup/order state must restart with them
            for item in schedule.deliveries:
                self.delivery_seen[item] = set()
        else:
            self._install(schedule, supplies, combine, expected)
            self._relocate_stranded()
        self.switches.append({"time": self.time, "mode": mode})
        return mode

    # -- results ---------------------------------------------------------

    def result(self) -> SimulationResult:
        violations = validate_one_port(self.trace) \
            if self.trace is not None else []
        if self.trace is not None:
            for item, times in self.delivery_times.items():
                node = self.schedule.deliveries.get(item)
                if node is None:
                    continue  # delivery item of a pre-switch schedule
                for t in times:
                    self.trace.add(TraceEvent(kind="delivery", node=node,
                                              start=t, end=t, item=item))
        return SimulationResult(schedule=self.schedule,
                                periods=self.periods_run,
                                horizon=self.time,
                                delivery_times=self.delivery_times,
                                trace=self.trace, errors=self.errors,
                                one_port_violations=violations,
                                switches=list(self.switches),
                                abandoned=list(self.abandoned))


def simulate_schedule(schedule: PeriodicSchedule,
                      supplies: Dict[Tuple[NodeId, Item], Callable[[int], object]],
                      n_periods: int,
                      combine: Optional[Callable[[object, object], object]] = None,
                      expected: Optional[Callable[[Item, int], object]] = None,
                      record_trace: bool = True,
                      engine: str = "auto") -> SimulationResult:
    """Replay ``schedule`` for ``n_periods`` (fault-free).

    Parameters
    ----------
    supplies:
        ``(node, item) -> factory(seq)``: infinite stamped supply of
        ``item`` at ``node`` (scatter source messages, reduce leaf values).
    combine:
        Binary operator for compute tasks (left, right) — required when the
        schedule has compute tasks.
    expected:
        ``(delivery item, seq) -> expected value``; mismatches are recorded
        in ``errors``.
    engine:
        ``"reference"`` (this module's per-instance executor),
        ``"compiled"`` (:mod:`repro.sim.compiled`'s vectorized replay), or
        ``"auto"`` — compiled whenever the schedule qualifies (pure
        communication, exact rational times, no trace requested), else
        reference.  See :func:`repro.sim.engine.resolve_sim_engine`.
    """
    from repro.sim.engine import resolve_sim_engine

    resolved = resolve_sim_engine(engine, schedule, combine=combine,
                                  record_trace=record_trace)
    if resolved == "compiled":
        from repro.sim.compiled import VectorizedExecutor

        vex = VectorizedExecutor(schedule, supplies)
        vex.run_periods(n_periods)
        return vex.result()
    ex = ScheduleExecutor(schedule, supplies, combine=combine,
                          expected=expected, record_trace=record_trace)
    for _ in range(n_periods):
        ex.run_period()
    return ex.result()


# ----------------------------------------------------------------------
# registry dispatch + compatibility wrappers
# ----------------------------------------------------------------------

def simulate_collective(schedule: PeriodicSchedule, problem, n_periods: int,
                        collective: Optional[str] = None, op=None,
                        record_trace: bool = True,
                        engine: str = "auto") -> SimulationResult:
    """Replay any registered collective's schedule.

    The spec (resolved from the problem type, or named explicitly via
    ``collective``) supplies the item semantics: where stamped instances
    enter the platform, what each delivery must contain, and the combine
    operator for compute tasks.  ``op`` overrides the reduction operator
    for computing collectives (default :class:`SeqConcat`).  ``engine``
    picks the replay implementation (``"auto"``/``"compiled"``/
    ``"reference"``) — value-checked semantics (a combine operator) always
    run on the reference executor.
    """
    from repro.collectives import resolve_collective

    spec = resolve_collective(problem, collective)
    sem = spec.simulation(schedule, problem, op=op)
    return simulate_schedule(schedule, sem.supplies, n_periods,
                             combine=sem.combine, expected=sem.expected,
                             record_trace=record_trace, engine=engine)


def chain_semantics(stage_semantics):
    """Merge per-stage item semantics into one composite ``SimSemantics``.

    ``stage_semantics`` is a sequence of ``(stage, SimSemantics)`` pairs
    whose items live in the *un-tagged* per-stage namespace (see
    :func:`repro.core.schedule.stage_view`); the merged semantics address
    the composite schedule's tagged items
    (:func:`repro.core.schedule.tag_item`).  At most one stage may carry a
    combine operator — composing two different reduction operators in one
    schedule has no defined payload algebra.

    For *pipelined* composites the merged ``expected`` checks run under
    genuine overlap: the chained stage's supplies are credit-gated by the
    schedule's :attr:`~repro.core.schedule.PeriodicSchedule.chain_links`
    (see :func:`simulate_schedule`), so every delivered payload that the
    per-stage ``expected`` validates was emitted only after the producing
    stage actually landed the corresponding value.
    """
    from repro.collectives.base import SimSemantics
    from repro.core.schedule import tag_item, untag_item

    supplies = {}
    expected_by_stage = {}
    combine = None
    for stage, sem in stage_semantics:
        for (node, item), factory in sem.supplies.items():
            supplies[(node, tag_item(stage, item))] = factory
        if sem.expected is not None:
            expected_by_stage[stage] = sem.expected
        if sem.combine is not None:
            if combine is not None and combine is not sem.combine:
                raise ValueError("cannot chain two stages with different "
                                 "combine operators")
            combine = sem.combine

    def expected(item, seq):
        tagged = untag_item(item)
        if tagged is None:
            return None
        fn = expected_by_stage.get(tagged[0])
        return fn(tagged[1], seq) if fn is not None else None

    return SimSemantics(supplies=supplies,
                        expected=expected if expected_by_stage else None,
                        combine=combine)


def simulate_scatter(schedule: PeriodicSchedule, problem, n_periods: int,
                     record_trace: bool = True) -> SimulationResult:
    """Replay a scatter schedule: source supplies ``(k, seq)`` payloads and
    each delivery is checked for content and order."""
    return simulate_collective(schedule, problem, n_periods,
                               collective="scatter", record_trace=record_trace)


def simulate_gossip(schedule: PeriodicSchedule, problem, n_periods: int,
                    record_trace: bool = True) -> SimulationResult:
    """Replay a gossip schedule (supply at each emitting source)."""
    return simulate_collective(schedule, problem, n_periods,
                               collective="gossip", record_trace=record_trace)


def simulate_reduce(schedule: PeriodicSchedule, problem, n_periods: int,
                    op=SeqConcat, record_trace: bool = True) -> SimulationResult:
    """Replay a reduce schedule with a non-commutative operator.

    Leaf values are stamped per tree; every delivered ``v[0, n-1]`` must
    equal the sequential left-to-right reference reduction.
    """
    return simulate_collective(schedule, problem, n_periods,
                               collective="reduce", op=op,
                               record_trace=record_trace)
