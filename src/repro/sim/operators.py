"""Reduction operators for correctness validation.

The paper is explicit that ``⊕`` is associative but **non-commutative** —
schedules may re-associate partial results but must never swap operands.
Validating simulated reductions therefore needs an operator where operand
order is observable.  :class:`SeqConcat` is sequence concatenation: the
reduction of stamped values ``v_j = [(j, stamp)]`` is correct iff the final
value is exactly ``[(0, stamp), (1, stamp), ..., (n-1, stamp)]`` — any
reordering, duplication or loss is caught.
"""

from __future__ import annotations

from typing import Sequence, Tuple


class SeqConcat:
    """Associative, non-commutative: tuple concatenation."""

    identity: Tuple = ()

    @staticmethod
    def combine(left: Tuple, right: Tuple) -> Tuple:
        return tuple(left) + tuple(right)

    @staticmethod
    def leaf(rank: int, stamp: int) -> Tuple:
        return ((rank, stamp),)

    @staticmethod
    def expected(n: int, stamp: int) -> Tuple:
        return tuple((j, stamp) for j in range(n))


class MatMul2x2Mod:
    """Associative, non-commutative: 2x2 integer matrix product mod p.

    A second operator with different algebra, for property tests — a
    schedule bug that happens to preserve concatenation order cannot hide
    from both.
    """

    prime = 1_000_003
    identity = (1, 0, 0, 1)

    @classmethod
    def combine(cls, a, b):
        a11, a12, a21, a22 = a
        b11, b12, b21, b22 = b
        p = cls.prime
        return ((a11 * b11 + a12 * b21) % p,
                (a11 * b12 + a12 * b22) % p,
                (a21 * b11 + a22 * b21) % p,
                (a21 * b12 + a22 * b22) % p)

    @classmethod
    def leaf(cls, rank: int, stamp: int):
        # distinct non-commuting matrices per (rank, stamp)
        return (1, (rank + 1) % cls.prime, (stamp + 2) % cls.prime, 1)

    @classmethod
    def expected(cls, n: int, stamp: int):
        acc = cls.identity
        for j in range(n):
            acc = cls.combine(acc, cls.leaf(j, stamp))
        return acc


def noncommutative_reduce(values: Sequence, op=SeqConcat):
    """Sequential left-to-right reference reduction."""
    if not values:
        return op.identity
    acc = values[0]
    for v in values[1:]:
        acc = op.combine(acc, v)
    return acc
