"""Execution traces and one-port invariant validation.

Every simulation records :class:`TraceEvent` rows; :func:`validate_one_port`
then proves (by interval sweep) that the executed schedule never had a node
sending twice at once, receiving twice at once, or computing two tasks at
once — i.e. that the library's schedules actually live inside the model the
LP bounds apply to.  A schedule whose trace validates and whose measured
throughput approaches ``TP(G)`` is the reproduction's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

NodeId = Hashable


@dataclass(frozen=True)
class TraceEvent:
    """One timed action.  ``kind`` in {"send", "compute", "delivery"}.

    For sends, ``node`` is the sender and ``peer`` the receiver; both ports
    are busy over ``[start, end)``.  Deliveries are instantaneous markers.
    """

    kind: str
    node: NodeId
    start: object
    end: object
    peer: Optional[NodeId] = None
    item: object = None

    def duration(self):
        return self.end - self.start


@dataclass
class Trace:
    """Ordered container of events with small query helpers."""

    events: List[TraceEvent] = field(default_factory=list)

    def add(self, event: TraceEvent) -> None:
        self.events.append(event)

    def sends(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "send"]

    def computes(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "compute"]

    def deliveries(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "delivery"]

    def horizon(self):
        return max((e.end for e in self.events), default=0)

    def __len__(self) -> int:
        return len(self.events)


def _overlaps(intervals: List[Tuple[object, object]]) -> List[str]:
    bad = []
    intervals = sorted(intervals)
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        if s2 < e1:  # touching endpoints are fine (half-open intervals)
            bad.append(f"[{s1},{e1}) overlaps [{s2},{e2})")
    return bad


def validate_one_port(trace: Trace) -> List[str]:
    """Check the three one-port invariants of Section 2 on a trace.

    Returns human-readable violations (empty list == valid):

    - a processor initiates at most one send at a time,
    - a processor initiates at most one receive at a time,
    - a processor executes at most one computation at a time (single CPU;
      computation/communication overlap is allowed and expected).
    """
    send_busy: Dict[NodeId, List[Tuple[object, object]]] = {}
    recv_busy: Dict[NodeId, List[Tuple[object, object]]] = {}
    cpu_busy: Dict[NodeId, List[Tuple[object, object]]] = {}
    for e in trace.events:
        if e.duration() == 0:
            continue
        if e.kind == "send":
            send_busy.setdefault(e.node, []).append((e.start, e.end))
            recv_busy.setdefault(e.peer, []).append((e.start, e.end))
        elif e.kind == "compute":
            cpu_busy.setdefault(e.node, []).append((e.start, e.end))
    bad: List[str] = []
    for label, table in (("send", send_busy), ("recv", recv_busy),
                         ("cpu", cpu_busy)):
        for node, intervals in table.items():
            for msg in _overlaps(intervals):
                bad.append(f"{label}@{node!r}: {msg}")
    return bad


def port_utilization(trace: Trace, horizon=None) -> Dict[Tuple[str, NodeId], float]:
    """Busy fraction per (port kind, node) over ``horizon``.

    Useful to identify the saturated resource that pins the steady-state
    throughput (the LP's binding constraints).
    """
    if horizon is None:
        horizon = trace.horizon()
    if not horizon:
        return {}
    busy: Dict[Tuple[str, NodeId], object] = {}
    for e in trace.events:
        if e.kind == "send":
            busy[("send", e.node)] = busy.get(("send", e.node), 0) + e.duration()
            busy[("recv", e.peer)] = busy.get(("recv", e.peer), 0) + e.duration()
        elif e.kind == "compute":
            busy[("cpu", e.node)] = busy.get(("cpu", e.node), 0) + e.duration()
    return {k: float(v) / float(horizon) for k, v in busy.items()}
