"""Mid-run fault injection: break the platform, detect it, replan, resume.

This is the simulator side of the degraded-platform pipeline.  A
:class:`FaultPlan` schedules perturbation events
(:mod:`repro.platform.perturb`) at period boundaries of a running
:class:`~repro.sim.executor.ScheduleExecutor`; :func:`run_with_faults`
drives the full loop:

1. **fire** — at the start of the fault's period, hard events hit the
   executor (:meth:`fail_link` / :meth:`fail_node`): in-flight transfers
   on the dead resource abort back to the sender, buffers at a dead node
   are written off explicitly.
2. **detect** — the stale schedule keeps running; slot transfers that
   reference a dead resource count into ``blocked_last_period``.  A
   nonzero count after a period is the detection signal (soft events —
   link degradations — change no physical route, so they trigger a
   replan immediately: the old schedule still runs but is no longer
   optimal).
3. **replan** — :func:`repro.lp.resolve.replan` re-solves the collective
   warm from the previous LP basis on the perturbed platform (optionally
   degrading around lost members), a new schedule is built, and
   :meth:`~repro.sim.executor.ScheduleExecutor.switch_schedule` swaps it
   in at the next period boundary with an exactly-once hand-off.
4. **resume** — the run continues under the new schedule; after the
   usual warm-up, :func:`steady_window_throughput` measures the
   sustained rate over the trailing periods, exactly (Fractions), for
   comparison ``==`` against the re-solved LP optimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.platform.perturb import (Event, LinkDegradation, LinkFailure,
                                    NodeFailure, NodeJoin, parse_event)
from repro.sim.executor import ScheduleExecutor, SimulationResult


@dataclass(frozen=True)
class Fault:
    """One perturbation event, scheduled at the start of ``period``."""

    period: int
    event: Event

    def describe(self) -> str:
        return f"@p{self.period}: {self.event.describe()}"


class FaultPlan:
    """An ordered set of faults against a simulated run.

    Spec syntax (CLI ``--faults``): comma-separated ``PERIOD:EVENT``
    where ``EVENT`` uses the :func:`repro.platform.perturb.parse_event`
    grammar — e.g. ``4:fail:p0:p1,6:down:p2``.
    """

    def __init__(self, faults: Sequence[Fault]):
        self.faults: Tuple[Fault, ...] = tuple(
            sorted(faults, key=lambda f: f.period))
        for f in self.faults:
            if f.period < 0:
                raise ValueError(f"fault period must be >= 0: {f}")

    @classmethod
    def from_spec(cls, text: str) -> "FaultPlan":
        faults = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            period_s, _, event_s = part.partition(":")
            try:
                period = int(period_s)
            except ValueError:
                raise ValueError(
                    f"bad fault spec {part!r}: want PERIOD:EVENT") from None
            faults.append(Fault(period, parse_event(event_s)))
        return cls(faults)

    def at(self, period: int) -> List[Event]:
        return [f.event for f in self.faults if f.period == period]

    def describe(self) -> str:
        return "; ".join(f.describe() for f in self.faults)


@dataclass
class FaultedRun:
    """Everything observable about one faulted replay."""

    result: SimulationResult
    plan: FaultPlan
    #: One :class:`repro.lp.resolve.ReplanReport` per replan that fired.
    reports: List[object] = field(default_factory=list)
    #: The last solved collective (drives the final schedule).
    final_solution: object = None
    #: Periods at whose start each replanned schedule took over.
    switch_periods: List[int] = field(default_factory=list)

    @property
    def replanned(self) -> bool:
        return bool(self.reports)


def _fire(ex: ScheduleExecutor, event: Event) -> bool:
    """Apply one event to a running executor; returns True when the event
    physically broke something the executor can *detect* (hard fault)."""
    if isinstance(event, LinkFailure):
        ex.fail_link(event.src, event.dst)
        return True
    if isinstance(event, NodeFailure):
        ex.fail_node(event.node)
        return True
    if isinstance(event, (LinkDegradation, NodeJoin)):
        # soft: routes survive, timing/planning changes only — the old
        # schedule keeps executing (its slot timing is what it is), it is
        # just no longer the optimal plan
        return False
    raise TypeError(f"unknown fault event {event!r}")


def run_with_faults(solution, plan: FaultPlan, n_periods: int, op=None,
                    replan: bool = True, on_infeasible: str = "degrade",
                    backend: str = "exact", record_trace: bool = True,
                    engine: str = "auto", **replan_kwargs) -> FaultedRun:
    """Replay ``solution``'s schedule for ``n_periods`` under ``plan``.

    Faults fire at period starts.  With ``replan=True`` (default) the
    first period that *detects* damage — blocked transfers on a dead
    resource, or a soft event that fired — triggers an incremental
    re-solve (:func:`repro.lp.resolve.replan`, warm from the old basis)
    over *all* events accumulated so far, and the re-solved schedule is
    switched in at the next period boundary.  With ``replan=False`` the
    broken schedule just keeps running (useful to observe degradation).

    ``engine`` selects the replay implementation like
    :func:`~repro.sim.executor.simulate_schedule` does; the compiled
    engine recompiles its tables at every fault and schedule switch, so
    the whole faulted loop stays on the fast path for pure-communication
    collectives.  Note the default ``record_trace=True`` keeps ``auto``
    on the reference executor — pass ``record_trace=False`` to let the
    dispatch rule pick the compiled engine.

    ``replan_kwargs`` go to :func:`repro.lp.resolve.replan` (e.g.
    ``compare=True`` to time the warm re-solve against a cold one).
    """
    from repro.collectives import schedule_collective
    from repro.lp.resolve import replan as lp_replan
    from repro.sim.engine import resolve_sim_engine

    schedule = schedule_collective(solution)
    sem = solution.spec.simulation(schedule, solution.problem, op=op)
    resolved = resolve_sim_engine(engine, schedule, combine=sem.combine,
                                  record_trace=record_trace)
    if resolved == "compiled":
        from repro.sim.compiled import VectorizedExecutor

        ex = VectorizedExecutor(schedule, sem.supplies)
    else:
        ex = ScheduleExecutor(schedule, sem.supplies, combine=sem.combine,
                              expected=sem.expected,
                              record_trace=record_trace)

    current = solution
    pending: List[Event] = []   # events not yet folded into a replan
    soft_hit = False            # a fired soft event awaiting a replan
    reports: List[object] = []
    switch_periods: List[int] = []

    for p in range(n_periods):
        for ev in plan.at(p):
            _fire(ex, ev)
            pending.append(ev)
            if not isinstance(ev, (LinkFailure, NodeFailure)):
                soft_hit = True
        if pending and replan:
            # hard damage shows up as blocked transfers once the stale
            # schedule runs into it; soft events are detected immediately
            detected = soft_hit or ex.blocked_last_period > 0
            if detected:
                report = lp_replan(current, tuple(pending), backend=backend,
                                   on_infeasible=on_infeasible,
                                   **replan_kwargs)
                new_sol = report.solution
                new_schedule = schedule_collective(new_sol)
                new_sem = new_sol.spec.simulation(new_schedule,
                                                  report.problem, op=op)
                ex.switch_schedule(new_schedule, new_sem.supplies,
                                   combine=new_sem.combine,
                                   expected=new_sem.expected)
                reports.append(report)
                switch_periods.append(p)
                current = new_sol
                pending = []
                soft_hit = False
        ex.run_period()

    return FaultedRun(result=ex.result(), plan=plan, reports=reports,
                      final_solution=current, switch_periods=switch_periods)


def steady_window_throughput(run: FaultedRun, periods: int = 8,
                             delivery_times: Optional[Dict] = None):
    """Exact sustained throughput over the trailing ``periods`` periods.

    Counts deliveries with ``start < t <= end`` (period-boundary landings
    belong to the window that ends on them) of the *final* schedule's
    delivery items, applies its ``delivery_mode`` (``min``: one op needs
    every item; ``sum``: independent streams), and divides by the window
    length — all in Fractions, so the result compares ``==`` against the
    re-solved LP's rational optimum once the post-switch warm-up has
    passed.
    """
    sr = run.result
    schedule = sr.schedule
    T = schedule.period
    if periods <= 0 or sr.periods == 0:
        raise ValueError("need a positive window and a non-empty run")
    end = sr.horizon
    start = end - periods * T
    times = delivery_times if delivery_times is not None \
        else sr.delivery_times
    counts = {item: sum(1 for t in times.get(item, ()) if start < t <= end)
              for item in schedule.deliveries}
    if not counts:
        return Fraction(0)
    mode = schedule.delivery_mode
    if mode is None:
        mode = "sum" if schedule.compute else "min"
    ops = sum(counts.values()) if mode == "sum" else min(counts.values())
    return Fraction(ops) / (Fraction(periods) * Fraction(T))
