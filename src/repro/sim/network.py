"""Greedy one-port resource timelines.

The makespan-oriented baselines (direct scatter, flat-tree and binary-tree
reduce) are *dynamic* algorithms, not periodic schedules, so they are
simulated with explicit resources: per-node send port, receive port and CPU.
Operations are placed greedily at the earliest instant when the message is
ready and both ports (or the CPU) are free — classical list scheduling,
which is how such heuristics are actually run.

This is deliberately conservative: ports are granted in request order
(FIFO), like a network stack would.  The steady-state schedules never go
through this module — they are replayed exactly by
:mod:`repro.sim.executor` — so LP-vs-baseline comparisons give baselines
their natural execution model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.platform.graph import NodeId, PlatformGraph
from repro.sim.trace import Trace, TraceEvent


@dataclass
class _Timeline:
    """Busy intervals of one resource, granted FIFO."""

    free_at: object = 0

    def book(self, ready, duration) -> Tuple[object, object]:
        start = self.free_at if self.free_at > ready else ready
        end = start + duration
        self.free_at = end
        return start, end


class OnePortNetwork:
    """One-port simulator with greedy FIFO resource booking."""

    def __init__(self, platform: PlatformGraph, record_trace: bool = True) -> None:
        self.platform = platform
        self.send_port: Dict[NodeId, _Timeline] = {n: _Timeline() for n in platform.nodes()}
        self.recv_port: Dict[NodeId, _Timeline] = {n: _Timeline() for n in platform.nodes()}
        self.cpu: Dict[NodeId, _Timeline] = {n: _Timeline() for n in platform.nodes()}
        self.trace: Optional[Trace] = Trace() if record_trace else None

    def transfer(self, src: NodeId, dst: NodeId, size, ready) -> object:
        """Ship ``size`` units over edge ``(src, dst)`` once both ports free.

        Returns the arrival time.  Booking is joint: the transfer starts at
        the earliest instant both the sender's send port and the receiver's
        receive port are available (and the data is ready).
        """
        cost = self.platform.cost(src, dst)
        duration = size * cost
        start = ready
        if self.send_port[src].free_at > start:
            start = self.send_port[src].free_at
        if self.recv_port[dst].free_at > start:
            start = self.recv_port[dst].free_at
        end = start + duration
        self.send_port[src].free_at = end
        self.recv_port[dst].free_at = end
        if self.trace is not None:
            self.trace.add(TraceEvent(kind="send", node=src, peer=dst,
                                      start=start, end=end))
        return end

    def route_transfer(self, path: List[NodeId], size, ready) -> object:
        """Store-and-forward along ``path``; returns final arrival time."""
        t = ready
        for u, v in zip(path, path[1:]):
            t = self.transfer(u, v, size, t)
        return t

    def compute(self, node: NodeId, duration, ready) -> object:
        """Run one task of length ``duration`` on ``node``'s single CPU."""
        start, end = self.cpu[node].book(ready, duration)
        if self.trace is not None:
            self.trace.add(TraceEvent(kind="compute", node=node,
                                      start=start, end=end))
        return end

    def makespan(self) -> object:
        tl = [t.free_at for t in self.send_port.values()]
        tl += [t.free_at for t in self.recv_port.values()]
        tl += [t.free_at for t in self.cpu.values()]
        return max(tl) if tl else 0
