"""SimGrid-style discrete-event simulation of the one-port model.

The paper's claims live in the abstract one-port model of Section 2: at any
instant a processor performs at most one send and one receive, computation
overlaps communication, and a transfer of ``m`` units over edge ``(i, j)``
occupies both ports for ``m * c(i, j)``.  This package implements exactly
that model and acts as the referee for every schedule the library emits:

- :mod:`repro.sim.engine` — a minimal event queue,
- :mod:`repro.sim.network` — greedy one-port resource timelines (used by the
  makespan-oriented baselines),
- :mod:`repro.sim.executor` — replay of :class:`~repro.core.schedule.PeriodicSchedule`
  objects with store-and-forward buffers (the Section 3.4 initialization /
  steady-state / clean-up structure emerges from empty buffers),
- :mod:`repro.sim.trace` — event traces and one-port invariant validation,
- :mod:`repro.sim.operators` — genuinely non-commutative reduction operators
  used to validate result correctness,
- :mod:`repro.sim.metrics` — throughput estimation from completion times.
"""

from repro.sim.engine import Engine
from repro.sim.network import OnePortNetwork
from repro.sim.executor import SimulationResult, simulate_schedule
from repro.sim.trace import Trace, TraceEvent, validate_one_port
from repro.sim.operators import SeqConcat, noncommutative_reduce
from repro.sim.metrics import steady_throughput, completions_per_horizon

__all__ = [
    "Engine",
    "OnePortNetwork",
    "SimulationResult",
    "simulate_schedule",
    "Trace",
    "TraceEvent",
    "validate_one_port",
    "SeqConcat",
    "noncommutative_reduce",
    "steady_throughput",
    "completions_per_horizon",
]
