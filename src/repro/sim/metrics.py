"""Throughput estimation from completion records."""

from __future__ import annotations

from typing import Sequence


def completions_per_horizon(times: Sequence[object], horizon) -> int:
    """Operations completed strictly within ``[0, horizon]``."""
    return sum(1 for t in times if t <= horizon)


def steady_throughput(times: Sequence[object], skip_fraction: float = 0.25) -> float:
    """Steady-state rate estimated from completion times.

    Skips the first ``skip_fraction`` of completions (pipeline warm-up) and
    returns ``ops / elapsed`` over the remainder.  Returns 0.0 with fewer
    than two usable samples.
    """
    times = sorted(float(t) for t in times)
    if len(times) < 2:
        return 0.0
    start = int(len(times) * skip_fraction)
    if start >= len(times) - 1:
        start = max(0, len(times) - 2)
    window = times[start:]
    elapsed = window[-1] - window[0]
    if elapsed <= 0:
        return 0.0
    return (len(window) - 1) / elapsed


def efficiency(measured: float, bound: float) -> float:
    """measured / bound, clamped into [0, 1+eps] for reporting."""
    if bound <= 0:
        return 0.0
    return measured / bound
