"""X3/X4: the parallel-prefix extension and LP solver scaling.

X3 — Section 6 names "general parallel prefix computations" as the natural
extension; we solve the prefix LP on the paper's triangle and report how
much throughput the extra deliveries cost versus a plain reduce.

X4 — solver scaling: exact rational simplex vs HiGHS on growing reduce
LPs (the reason the library auto-dispatches by size).
"""

import time

from repro.core.prefix import solve_prefix
from repro.core.reduce_op import ReduceProblem, build_reduce_lp, solve_reduce
from repro.lp import ExactSimplexSolver, HighsSolver
from repro.platform.examples import figure6_platform
from repro.platform.generators import complete


def test_x3_prefix_vs_reduce(benchmark, report):
    problem = ReduceProblem(figure6_platform(), participants=[0, 1, 2],
                            target=0)
    reduce_tp = solve_reduce(problem, backend="exact").throughput
    prefix = benchmark(lambda: solve_prefix(problem, backend="exact"))
    report.row("X3: plain reduce TP (Fig 6)", 1, reduce_tp)
    report.row("X3: parallel-prefix TP (deliver v[0,i] to every rank)",
               "<= reduce TP", prefix.throughput)
    report.row("X3: prefix/reduce ratio", "(not reported)",
               f"{float(prefix.throughput) / float(reduce_tp):.3f}")
    assert 0 < prefix.throughput <= reduce_tp


def test_x4_lp_scaling_exact_vs_highs(benchmark, report):
    rows = []
    for n in (3, 4, 5):
        g = complete(n, cost=1)
        nodes = g.nodes()
        problem = ReduceProblem(g, nodes, nodes[0])
        lp = build_reduce_lp(problem)
        t0 = time.perf_counter()
        exact = ExactSimplexSolver().solve(lp)
        t_exact = time.perf_counter() - t0
        t0 = time.perf_counter()
        approx = HighsSolver().solve(lp)
        t_highs = time.perf_counter() - t0
        assert abs(float(exact.objective) - float(approx.objective)) < 1e-6
        rows.append((n, lp.num_vars(), round(t_exact * 1000, 1),
                     round(t_highs * 1000, 1)))

    def solve_largest():
        g = complete(5, cost=1)
        nodes = g.nodes()
        return solve_reduce(ReduceProblem(g, nodes, nodes[0]),
                            backend="highs")

    benchmark(solve_largest)
    report.row("X4: (n, vars, exact ms, highs ms) per instance",
               "exact blows up, HiGHS stays flat",
               "; ".join(str(r) for r in rows))
    report.line("X4: this scaling is why solve(backend='auto') dispatches "
                "small LPs to the exact simplex and large ones to HiGHS "
                "with rationalization.")
