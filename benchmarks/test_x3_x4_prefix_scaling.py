"""X3/X4: the parallel-prefix extension and LP solver scaling.

X3 — Section 6 names "general parallel prefix computations" as the natural
extension; we solve the prefix LP on the paper's triangle and report how
much throughput the extra deliveries cost versus a plain reduce.

X4 — solver scaling: exact rational simplex vs HiGHS on growing reduce
LPs (the reason the library auto-dispatches by size).
"""

import time

from repro.core.prefix import solve_prefix
from repro.core.reduce_op import ReduceProblem, build_reduce_lp, solve_reduce
from repro.lp import ExactSimplexSolver, HighsSolver, dispatch
from repro.platform.examples import figure6_platform
from repro.platform.generators import complete


def test_x3_prefix_vs_reduce(benchmark, report):
    problem = ReduceProblem(figure6_platform(), participants=[0, 1, 2],
                            target=0)
    reduce_tp = solve_reduce(problem, backend="exact").throughput
    prefix = benchmark(lambda: solve_prefix(problem, backend="exact"))
    report.row("X3: plain reduce TP (Fig 6)", 1, reduce_tp)
    report.row("X3: parallel-prefix TP (deliver v[0,i] to every rank)",
               "<= reduce TP", prefix.throughput)
    report.row("X3: prefix/reduce ratio", "(not reported)",
               f"{float(prefix.throughput) / float(reduce_tp):.3f}")
    assert 0 < prefix.throughput <= reduce_tp


def test_x4_lp_scaling_exact_vs_highs(benchmark, report):
    """Exact-solver scaling on the growing ``SSR(complete-n)`` family.

    Also exercises the dispatch warm start: the first solve of each size
    records its optimal basis under the family slot; the re-solve
    crash-pivots that basis back in and skips Phase 1 entirely (the memo
    cache is bypassed to measure the simplex, not the cache).
    """
    dispatch.clear_cache()
    rows = []
    for n in (3, 4, 5, 6):
        g = complete(n, cost=1)
        nodes = g.nodes()
        problem = ReduceProblem(g, nodes, nodes[0])
        lp = build_reduce_lp(problem)
        t0 = time.perf_counter()
        cold = dispatch.solve(lp, backend="exact", cache=False,
                              warm_start=True, family=f"X4-SSR-{n}")
        t_cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = dispatch.solve(build_reduce_lp(problem), backend="exact",
                              cache=False, warm_start=True,
                              family=f"X4-SSR-{n}")
        t_warm = time.perf_counter() - t0
        t0 = time.perf_counter()
        approx = HighsSolver().solve(lp)
        t_highs = time.perf_counter() - t0
        assert warm.objective == cold.objective
        assert abs(float(cold.objective) - float(approx.objective)) < 1e-6
        rows.append((n, lp.num_vars(), round(t_cold * 1000, 1),
                     round(t_warm * 1000, 1), round(t_highs * 1000, 1)))

    def solve_largest_exact():
        g = complete(5, cost=1)
        nodes = g.nodes()
        lp = build_reduce_lp(ReduceProblem(g, nodes, nodes[0]))
        return ExactSimplexSolver().solve(lp)

    benchmark(solve_largest_exact)
    report.row("X4: (n, vars, exact-cold ms, exact-warm ms, highs ms)",
               "exact blows up past ~200 vars (pre-PR1)",
               "; ".join(str(r) for r in rows))
    report.line("X4: the sparse fraction-free simplex keeps the whole "
                "family exact (dispatch limit "
                f"{dispatch.EXACT_VAR_LIMIT} vars); re-solves warm-start "
                "from the family's recorded basis and skip Phase 1, HiGHS "
                "remains the float fallback beyond the limit.")
