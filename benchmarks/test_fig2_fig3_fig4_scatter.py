"""Figures 2-4: the toy Series-of-Scatters example.

- Figure 2: ``SSSP(G)`` on the 5-node platform; paper optimum TP = 1/2
  (6 messages per target every 12 time-units).
- Figure 3: decomposition of the communication bipartite graph into
  weighted matchings (the paper exhibits 4 over a period of 12).
- Figure 4: the two schedule variants — messages split across slots
  (paper period 12) and no-split (paper period 48, i.e. 4x).
"""

from fractions import Fraction

from repro.core.matching import decompose_matchings
from repro.core.scatter import (ScatterProblem, build_scatter_schedule, solve_scatter)
from repro.platform.examples import figure2_platform, figure2_targets
from repro.sim.executor import simulate_scatter


def _problem():
    return ScatterProblem(figure2_platform(), "Ps", figure2_targets())


def test_fig2_lp_throughput(benchmark, report):
    problem = _problem()
    sol = benchmark(lambda: solve_scatter(problem, backend="exact"))
    report.row("Fig 2: steady-state scatter throughput TP", "1/2",
               sol.throughput)
    report.row("Fig 2: messages per target per 12 time-units", 6,
               sol.throughput * 12)
    for k in figure2_targets():
        delivered = sum(w for _, w in sol.paths[k])
        report.row(f"Fig 2: delivered rate for m[{k}]", "1/2", delivered)
    assert sol.throughput == Fraction(1, 2)
    assert sol.verify() == []


def test_fig3_matching_decomposition(benchmark, report):
    # the paper's Figure 3 bipartite graph (period-12 occupation times)
    edges = [(("S", "Ps"), ("R", "Pa"), 3), (("S", "Ps"), ("R", "Pb"), 9),
             (("S", "Pa"), ("R", "P0"), 2), (("S", "Pb"), ("R", "P0"), 4),
             (("S", "Pb"), ("R", "P1"), 8)]
    ms = benchmark(lambda: decompose_matchings(list(edges), cap=12))
    real = [m for m in ms if m.pairs]
    report.row("Fig 3: number of matchings", 4, len(real),
               "any count <= |E| is valid; durations must sum to 12")
    report.row("Fig 3: total matching duration", 12,
               sum((m.duration for m in ms), 0))
    assert sum((m.duration for m in ms), 0) == 12
    assert len(real) <= 5


def test_fig4_schedules(benchmark, report):
    problem = _problem()
    # canonical: the asserted periods pin one optimal vertex's schedule
    sol = solve_scatter(problem, backend="exact", canonical=True)
    sched = benchmark(lambda: build_scatter_schedule(sol))
    nosplit = sched.without_splits()
    report.row("Fig 4a: period with split messages", 12, sched.period,
               "our LP vertex routes all m0 via Pa, so a smaller period works")
    report.row("Fig 4b: no-split period / split period", "4x",
               f"{nosplit.period // sched.period}x")
    report.row("Fig 4: schedule one-port violations", 0,
               len(sched.validate()) + len(nosplit.validate()))
    assert sched.validate() == [] and nosplit.validate() == []
    # both schedules deliver at the same steady rate
    res = simulate_scatter(sched, problem, n_periods=40, record_trace=False)
    res2 = simulate_scatter(nosplit, problem, n_periods=40 * int(sched.period)
                            // int(nosplit.period) + 2, record_trace=False)
    assert res.errors == [] and res2.errors == []
    report.row("Fig 4: simulated throughput (split schedule)", "1/2",
               round(float(res.measured_throughput()), 4))
