"""Perf-report helper: times the exact-LP hot path and writes
``BENCH_PR3.json``.

The measured path is the one ``repro.lp.solve`` takes for an exact solve
(cold, no cache): :func:`repro.lp.presolve.presolve`, the indexed
fraction-free simplex (:class:`repro.lp.exact_simplex.ExactSimplexSolver`,
Devex pricing), and the postsolve map back to original variables.  Per
case:

- ``build_s`` — LP model construction (the ``lin_sum``/``add_term`` path),
- ``presolve_s`` / ``presolved_vars`` / ``presolved_rows`` — reduction
  cost and how much of the model it removes,
- ``exact_solve_s`` — presolve + simplex + postsolve, end to end,
- ``before_exact_solve_s`` — the same case under the PR 1 solver (dense
  → sparse era): read from the committed ``BENCH_PR1.json`` where the
  case existed, else the timing recorded once on this machine when this
  baseline was created (``"recorded": true``).  ``ring48_scatter`` also
  sat beyond the old ``EXACT_VAR_LIMIT = 2000``, so its "before" never
  ran inside the auto-dispatch pipeline at all.

``BENCH_PR1.json`` is the frozen PR 1 record (dense-vs-sparse); it is no
longer rewritten.  Run this module to (re)generate the live baseline::

    PYTHONPATH=src python benchmarks/perf_report.py

``benchmarks/test_perf_lp.py`` drives the same machinery inside the test
suite, and ``tests/perf/test_perf_smoke.py`` guards the committed
``BENCH_PR3.json`` against >2× regressions of the fig9 tier and the two
scaled tiers (``complete7_reduce``, ``ring48_scatter``).
"""

from __future__ import annotations

import argparse
import json
import platform as _platform
import time
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.core.reduce_op import ReduceProblem, build_reduce_lp
from repro.core.scatter import ScatterProblem, build_scatter_lp
from repro.lp.exact_simplex import ExactSimplexSolver
from repro.lp.model import LinearProgram, lin_sum
from repro.lp.presolve import presolve
from repro.platform.examples import (
    figure2_platform, figure2_targets, figure6_platform,
    figure9_participants, figure9_platform, figure9_target,
)
from repro.platform.generators import complete, ring

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR3.json"
PR1_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR1.json"
REPLAN_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR6.json"
REVISED_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR7.json"
COLGEN_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR8.json"
SIM_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR9.json"
TUNE_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR10.json"

#: End-to-end auto-dispatch timings of the colgen tiers *before* colgen
#: existed (the revised engine took them), measured on the machine that
#: produced the committed ``BENCH_PR7.json``.  Used as the fallback
#: "before" when that file is absent.
RECORDED_PR7_SECONDS = {
    "fig9_8host_allreduce_pipelined": 7.4324,
    "ring128_scatter": 19.2339,
}

#: PR 1-solver timings for cases that did not exist in ``BENCH_PR1.json``,
#: measured once on the machine that produced the committed baseline.
RECORDED_PR1_SECONDS = {
    # priced phase 1 + Dantzig thrashed the degenerate optimal face
    "complete7_reduce": 254.2,
    # 4419 vars: beyond the old EXACT_VAR_LIMIT=2000 (auto-dispatch sent
    # it to HiGHS); timing is the PR 1 solver run directly
    "ring48_scatter": 2.80,
}


def _fig9_problem() -> ReduceProblem:
    return ReduceProblem(figure9_platform(), participants=figure9_participants(),
                         target=figure9_target(), msg_size=10, task_work=10)


def _cases() -> Dict[str, Callable[[], LinearProgram]]:
    """name -> LP builder.  Paper-scale cases first, then 5–20× scaled."""
    def fig2_scatter():
        g = figure2_platform()
        return build_scatter_lp(ScatterProblem(g, "Ps", figure2_targets()))

    def fig6_reduce():
        return build_reduce_lp(ReduceProblem(figure6_platform(), [0, 1, 2], 0))

    def fig9_reduce():
        return build_reduce_lp(_fig9_problem())

    def complete_reduce(n):
        g = complete(n, cost=1)
        return build_reduce_lp(ReduceProblem(g, g.nodes(), g.nodes()[0]))

    def ring_scatter(n):
        g = ring(n, cost=1)
        nodes = g.nodes()
        return build_scatter_lp(ScatterProblem(g, nodes[0], nodes[1:]))

    def fig9_allgather():
        # PR 4 workload rung: the joint composite LP — 8 broadcast stages
        # over the shared fig9 capacities, assembled by compose_joint_lp
        from repro.collectives import get_collective
        from repro.core.allgather import AllGatherProblem

        problem = AllGatherProblem(figure9_platform(),
                                   figure9_participants(), msg_size=10)
        return get_collective("all-gather").build_lp(problem)

    def complete6_allgather():
        from repro.collectives import get_collective
        from repro.core.allgather import AllGatherProblem

        g = complete(6, cost=1)
        return get_collective("all-gather").build_lp(
            AllGatherProblem(g, g.nodes()))

    return {
        "fig2_scatter": fig2_scatter,
        "fig6_reduce": fig6_reduce,
        "complete5_reduce": lambda: complete_reduce(5),
        "complete6_reduce": lambda: complete_reduce(6),
        "ring24_scatter": lambda: ring_scatter(24),
        "fig9_reduce": fig9_reduce,
        # the PR 3 tiers: previously near-minute or outside the exact path
        "complete7_reduce": lambda: complete_reduce(7),
        "ring48_scatter": lambda: ring_scatter(48),
        # the PR 4 composition tiers (joint composite LPs)
        "fig9_allgather": fig9_allgather,
        "complete6_allgather": complete6_allgather,
    }


def _composite_cases() -> Dict[str, Callable[[], object]]:
    """name -> end-to-end exact solve of a composed collective.

    Sequential composites (all-reduce) have no single LP, so these tiers
    time ``solve_collective`` cold (memo cache off): stage LP builds,
    presolve, simplex and extraction for every stage.
    """
    from repro.collectives import solve_collective
    from repro.core.allreduce import AllReduceProblem

    def fig9_allreduce4():
        problem = AllReduceProblem(figure9_platform(),
                                   figure9_participants()[:4], msg_size=10,
                                   task_work=10)
        return solve_collective(problem, collective="all-reduce",
                                backend="exact", cache=False)

    def complete5_allreduce():
        g = complete(5, cost=1)
        return solve_collective(AllReduceProblem(g, g.nodes()),
                                collective="all-reduce", backend="exact",
                                cache=False)

    def fig6_allreduce_pipelined():
        # PR 5 workload rung: the chained joint LP overlapping both
        # phases (task_work=2 makes the reduce-scatter compute-bound, so
        # the pipelined TP=1/4 strictly beats the harmonic 1/5)
        problem = AllReduceProblem(figure6_platform(), [0, 1, 2],
                                   task_work=2)
        return solve_collective(problem, collective="all-reduce",
                                backend="exact", cache=False,
                                mode="pipelined")

    return {
        "fig9_allreduce4": fig9_allreduce4,
        "complete5_allreduce": complete5_allreduce,
        "fig6_allreduce_pipelined": fig6_allreduce_pipelined,
    }


def _replan_cases() -> Dict[str, Callable[[], tuple]]:
    """name -> () -> (solved collective, perturbation events).

    The PR 6 degraded-planning tiers: each case is a solved collective
    plus the events to replan around.  The paper-figure instances are
    millisecond-scale (the warm crash costs about a cold solve there —
    see ``WARM_BASIS_MIN_LABELS``); ``x20_scatter_slow`` is the tier
    where the basis is large enough for the warm path to win outright,
    and the one the perf smoke guard holds to the <0.5x acceptance bar.
    """
    from fractions import Fraction

    from repro.collectives import solve_collective
    from repro.core.allreduce import AllReduceProblem
    from repro.platform.generators import heterogenize, random_connected
    from repro.platform.perturb import LinkDegradation, LinkFailure

    def fig9_scatter():
        g = figure9_platform()
        src = figure9_target()
        targets = [p for p in figure9_participants() if p != src]
        return solve_collective(ScatterProblem(g, src, targets),
                                backend="exact", cache=False)

    def fig6_allreduce():
        problem = AllReduceProblem(figure6_platform(), [0, 1, 2],
                                   task_work=2)
        return solve_collective(problem, collective="all-reduce",
                                backend="exact", cache=False,
                                mode="pipelined")

    def x20_scatter():
        g = heterogenize(random_connected(20, extra_edges=24, seed=5), 9)
        nodes = g.compute_nodes()
        return solve_collective(ScatterProblem(g, nodes[0], nodes[1:]),
                                backend="exact", cache=False)

    return {
        "fig9_scatter_slow": lambda: (fig9_scatter(),
                                      (LinkDegradation(2, 8, factor=2),)),
        "fig9_scatter_fail": lambda: (fig9_scatter(), (LinkFailure(2, 8),)),
        "fig6_allreduce_pipelined_slow":
            lambda: (fig6_allreduce(),
                     (LinkDegradation(1, 2, factor=2),)),
        "x20_scatter_slow": lambda: (x20_scatter(),
                                     (LinkDegradation(*_x20_edge(),
                                                      factor=Fraction(2)),)),
    }


def _revised_cases() -> Dict[str, Callable[[], object]]:
    """name -> () -> solved collective, through the revised-simplex path.

    The PR 7 scale tiers: LPs past the old ``EXACT_VAR_LIMIT = 5000``
    that the tableau engine cannot touch (its dense fraction-free rows
    blow up quadratically), solved exactly by the LU-factorized revised
    simplex with the float-assisted crash.  ``fig9_8host`` pins
    ``backend="revised"`` explicitly since PR 8: plain auto-dispatch now
    routes this LP to column generation (the BENCH_PR8 tier), and this
    record keeps timing the revised engine itself — it doubles as the
    "before" side of the colgen speedup.  Its rational throughput must
    match HiGHS in float and verify clean.
    """
    from repro.collectives import solve_collective
    from repro.core.allreduce import AllReduceProblem

    def fig9_8host():
        problem = AllReduceProblem(figure9_platform(),
                                   figure9_participants(), msg_size=10,
                                   task_work=10)
        return solve_collective(problem, collective="all-reduce",
                                backend="revised", mode="pipelined",
                                cache=False)

    def ring128_scatter():
        g = ring(128, cost=1)
        nodes = g.nodes()
        return solve_collective(ScatterProblem(g, nodes[0], nodes[1:]),
                                backend="revised", cache=False)

    def complete12_reduce():
        g = complete(12, cost=1)
        return solve_collective(ReduceProblem(g, g.nodes(), g.nodes()[0]),
                                collective="reduce", backend="revised",
                                cache=False)

    return {
        "fig9_8host_allreduce_pipelined": fig9_8host,
        "ring128_scatter": ring128_scatter,
        "complete12_reduce": complete12_reduce,
    }


def bench_revised(name: str, case: Callable[[], object]) -> Dict[str, object]:
    """Time one revised-engine tier end to end and cross-check HiGHS."""
    from repro.collectives import solve_collective

    t0 = time.perf_counter()
    sol = case()
    solve_s = time.perf_counter() - t0
    assert sol.exact, f"{name}: revised tier came back inexact"
    assert sol.verify() == [], f"{name}: solution fails verification"
    stats = sol.lp_solution.stats if sol.lp_solution is not None else {}

    mode = getattr(sol, "mode", "")
    highs = solve_collective(sol.problem, collective=sol.collective,
                             backend="highs", cache=False,
                             **({"mode": mode} if mode else {}))
    assert abs(float(sol.throughput) - float(highs.throughput)) < 1e-7, \
        f"{name}: exact and HiGHS optima disagree"

    entry: Dict[str, object] = {
        "solve_s": round(solve_s, 5),
        "throughput": str(sol.throughput),
        "highs_agrees": True,
    }
    if stats:
        entry.update({
            "vars_raw": stats.get("vars_raw"),
            "vars_presolved": stats.get("vars_presolved"),
            "basis_m": stats.get("basis_m"),
            "path": stats.get("path"),
            "pivots": stats.get("pivots"),
            "dual_pivots": stats.get("dual_pivots"),
            "refactorizations": stats.get("refactorizations"),
        })
    return entry


def run_revised() -> Dict[str, object]:
    cases = {name: bench_revised(name, case)
             for name, case in _revised_cases().items()}
    return {
        "meta": {
            "pr": 7,
            "description": "rational revised simplex (LU-factorized basis, "
                           "float-assisted crash, commodity-block Devex "
                           "pricing) on LPs past the old tableau limit; "
                           "each tier solved exactly end to end, verified, "
                           "and cross-checked against HiGHS in float",
            "python": _platform.python_version(),
            "machine": _platform.machine(),
        },
        "revised_cases": cases,
    }


def write_revised_report(path: Path = REVISED_PATH) -> Dict[str, object]:
    report = run_revised()
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _colgen_cases() -> Dict[str, Callable[[], object]]:
    """name -> () -> solved collective, auto-routed to column generation.

    The PR 8 tiers: every case runs plain ``backend="auto"`` with no
    hint — the presolved model sits past ``COLGEN_VAR_LIMIT`` and the
    raw model decomposes into per-commodity blocks, so dispatch routes
    it to the Dantzig-Wolfe column-generation loop.  ``fig9_8host`` and
    ``ring128`` are the PR 7 rungs re-run on the new route (their
    "before" is the revised-engine timing from ``BENCH_PR7.json``);
    ``fattree6_scatter`` is the first datacenter-scale tier the exact
    path reaches at all — a k=6 fat-tree (54 heterogeneous hosts behind
    45 switches, 17k raw vars) where all 53 commodities price by
    Dijkstra shortest path against the master's rational duals.
    """
    from repro.collectives import solve_collective
    from repro.core.allreduce import AllReduceProblem
    from repro.platform.generators import fat_tree

    def fig9_8host():
        problem = AllReduceProblem(figure9_platform(),
                                   figure9_participants(), msg_size=10,
                                   task_work=10)
        return solve_collective(problem, collective="all-reduce",
                                backend="auto", mode="pipelined",
                                cache=False)

    def ring128_scatter():
        g = ring(128, cost=1)
        nodes = g.nodes()
        return solve_collective(ScatterProblem(g, nodes[0], nodes[1:]),
                                backend="auto", cache=False)

    def fattree6_scatter():
        g = fat_tree(6)
        hosts = g.compute_nodes()
        return solve_collective(ScatterProblem(g, hosts[0], hosts[1:]),
                                backend="auto", cache=False)

    return {
        "fig9_8host_allreduce_pipelined": fig9_8host,
        "ring128_scatter": ring128_scatter,
        "fattree6_scatter": fattree6_scatter,
    }


def bench_colgen(name: str, case: Callable[[], object]) -> Dict[str, object]:
    """Time one colgen tier end to end and cross-check HiGHS."""
    from repro.collectives import solve_collective

    t0 = time.perf_counter()
    sol = case()
    solve_s = time.perf_counter() - t0
    assert sol.exact, f"{name}: colgen tier came back inexact"
    assert sol.verify() == [], f"{name}: solution fails verification"
    stats = sol.lp_solution.stats if sol.lp_solution is not None else {}
    assert stats.get("engine") == "colgen", \
        f"{name}: auto-dispatch did not route to colgen"

    mode = getattr(sol, "mode", "")
    highs = solve_collective(sol.problem, collective=sol.collective,
                             backend="highs", cache=False,
                             **({"mode": mode} if mode else {}))
    # HiGHS stops at float tolerances, so on 17k-var models its optimum
    # can sit ~1e-6 below the exact rational one — compare relatively
    exact_f, highs_f = float(sol.throughput), float(highs.throughput)
    assert abs(exact_f - highs_f) <= 1e-4 * max(abs(exact_f), 1e-9), \
        f"{name}: exact and HiGHS optima disagree"

    entry: Dict[str, object] = {
        "solve_s": round(solve_s, 5),
        "throughput": str(sol.throughput),
        "highs_agrees": True,
        "vars_raw": stats.get("vars_raw"),
        "vars_presolved": stats.get("vars_presolved"),
        "blocks": stats.get("blocks"),
        "path_blocks": stats.get("path_blocks"),
        "rounds": stats.get("rounds"),
        "columns": stats.get("columns"),
        "columns_priced": stats.get("columns_priced"),
        "jobs": stats.get("jobs"),
        "parallel_speedup": round(stats.get("parallel_speedup") or 0, 3),
        "master_s": round(stats.get("master_s") or 0, 5),
        "pricing_s": round(stats.get("pricing_s") or 0, 5),
    }

    before: Optional[float] = None
    if REVISED_PATH.exists():
        pr7 = json.loads(REVISED_PATH.read_text()).get("revised_cases", {})
        if name in pr7:
            before = float(pr7[name]["solve_s"])
    if before is None and name in RECORDED_PR7_SECONDS:
        before = RECORDED_PR7_SECONDS[name]
        entry["recorded"] = True
    if before is not None:
        entry["before_solve_s"] = before
        entry["speedup_x"] = round(before / max(solve_s, 1e-9), 2)
    return entry


def run_colgen() -> Dict[str, object]:
    cases = {name: bench_colgen(name, case)
             for name, case in _colgen_cases().items()}
    return {
        "meta": {
            "pr": 8,
            "description": "Dantzig-Wolfe column generation over commodity "
                           "blocks (rational restricted master on the shared "
                           "capacity rows, Dijkstra/LP pricing against exact "
                           "duals) reached through plain auto-dispatch; "
                           "before = the same tier on the PR 7 revised "
                           "engine (BENCH_PR7.json); each tier solved "
                           "exactly, verified, and cross-checked against "
                           "HiGHS in float",
            "python": _platform.python_version(),
            "machine": _platform.machine(),
        },
        "colgen_cases": cases,
    }


def write_colgen_report(path: Path = COLGEN_PATH) -> Dict[str, object]:
    report = run_colgen()
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _sim_cluster1025():
    """The PR 9 acceptance tier: a 1025-node clustered distribution.

    A hub fans 992 distinct items out through 32 relays (31 leaves per
    relay); every item flows hub -> relay -> leaf at rate 1/1024 with
    unit transfer time, so the derived period is T=1024 with ~2k slot
    transfers per period, the hub's 992 sends serialized on its port.
    Pure communication, exact rationals — the compiled engine takes it.
    """
    from fractions import Fraction as F

    from repro.core.schedule import schedule_from_rates

    rate, ut = F(1, 1024), F(1)
    rates: Dict[tuple, tuple] = {}
    deliveries: Dict[str, str] = {}
    for r in range(32):
        relay = f"R{r:02d}"
        for leaf_i in range(31):
            leaf, item = f"L{r:02d}_{leaf_i:02d}", f"m{r:02d}_{leaf_i:02d}"
            rates[("hub", relay, item)] = (rate, ut)
            rates[(relay, leaf, item)] = (rate, ut)
            deliveries[item] = leaf
    t0 = time.perf_counter()
    sched = schedule_from_rates(rates, rate, deliveries, name="cluster1025")
    build_s = time.perf_counter() - t0
    supplies = {("hub", item): (lambda it: (lambda seq: (it, seq)))(item)
                for item in deliveries}
    return sched, supplies, build_s


def _sim_solved_schedule(case: str):
    """Solve + schedule one of the LP-backed sim tiers."""
    from repro.collectives import (
        available_collectives, schedule_collective, solve_collective,
    )
    from repro.platform.generators import fat_tree

    spec = {s.name: s for s in available_collectives()}["scatter"]
    if case == "ring128":
        g = ring(128, cost=1)
        nodes = g.nodes()
    else:  # fattree6
        g = fat_tree(6)
        nodes = g.compute_nodes()
    sol = solve_collective(ScatterProblem(g, nodes[0], nodes[1:]),
                           backend="auto", cache=False)
    sched = schedule_collective(sol)
    sem = spec.simulation(sched, sol.problem)
    return sched, sem.supplies


def _sim_replay(engine_cls, sched, supplies, periods):
    """Replay ``periods`` periods and materialize the result; returns
    ``(seconds, result)`` — materialization is included because the
    reference executor pays its per-delivery accounting inside the run."""
    ex = engine_cls(sched, supplies)
    t0 = time.perf_counter()
    for _ in range(periods):
        ex.run_period()
    res = ex.result()
    return time.perf_counter() - t0, res


def _assert_replays_agree(name, a, b):
    assert a.delivery_times == b.delivery_times, \
        f"{name}: engines disagree on delivery times"
    assert a.completed_ops() == b.completed_ops(), \
        f"{name}: engines disagree on completed ops"
    assert a.measured_throughput() == b.measured_throughput(), \
        f"{name}: engines disagree on throughput"


def bench_sim_pair(name, sched, supplies, periods,
                   reference_periods=None) -> Dict[str, object]:
    """Time one schedule replay on both engines, bit-identity asserted.

    ``reference_periods`` caps the reference side on tiers where the full
    run would take minutes (the million-slot fat-tree); the speedup is
    then per-period over each side's own window, and bit-identity is
    checked over the shared smaller window.
    """
    from repro.sim.compiled import VectorizedExecutor, compile_unsupported
    from repro.sim.executor import ScheduleExecutor

    assert compile_unsupported(sched) is None, \
        f"{name}: tier schedule not compilable"
    ref_periods = reference_periods or periods
    compiled_s, fast_res = _sim_replay(VectorizedExecutor, sched, supplies,
                                       periods)
    reference_s, ref_res = _sim_replay(ScheduleExecutor, sched, supplies,
                                       ref_periods)
    if ref_periods == periods:
        _assert_replays_agree(name, fast_res, ref_res)
    else:
        _, small_res = _sim_replay(VectorizedExecutor, sched, supplies,
                                   ref_periods)
        _assert_replays_agree(name, small_res, ref_res)
    transfers = sum(len(s.transfers) for s in sched.slots)
    entry: Dict[str, object] = {
        "nodes": len({n for s in sched.slots for t in s.transfers
                      for n in (t.src, t.dst)}),
        "transfers_per_period": transfers,
        "periods": periods,
        "slot_events": transfers * periods,
        "compiled_s": round(compiled_s, 5),
        "reference_periods": ref_periods,
        "reference_s": round(reference_s, 5),
        "speedup_x": round((reference_s / ref_periods)
                           / max(compiled_s / periods, 1e-12), 1),
        "completed_ops": fast_res.completed_ops(),
        "throughput": str(fast_res.measured_throughput()),
        "bit_identical": True,
    }
    return entry


def bench_sim_reference_only(name, periods) -> Dict[str, object]:
    """The fig9 8-host pipelined replay: value-checked (combine) + compute
    semantics are pinned to the reference executor by the dispatch rule,
    so this tier records the fallback path the compiled engine refuses."""
    from repro.collectives import schedule_collective, solve_collective
    from repro.core.allreduce import AllReduceProblem
    from repro.sim.executor import simulate_collective

    problem = AllReduceProblem(figure9_platform(), figure9_participants(),
                               msg_size=10, task_work=10)
    sol = solve_collective(problem, collective="all-reduce",
                           backend="auto", mode="pipelined", cache=False)
    sched = schedule_collective(sol)
    t0 = time.perf_counter()
    res = simulate_collective(sched, problem, n_periods=periods,
                              collective="all-reduce", record_trace=False,
                              engine="auto")
    replay_s = time.perf_counter() - t0
    assert res.engine == "reference", \
        f"{name}: value-checked replay must stay on the reference executor"
    assert res.correct, f"{name}: pipelined replay failed value checks"
    return {
        "periods": periods,
        "replay_s": round(replay_s, 5),
        "engine": res.engine,
        "completed_ops": res.completed_ops(),
        "throughput": str(res.measured_throughput()),
        "note": "compute + combine semantics: auto-dispatch pins the "
                "reference executor (value checks need real payloads)",
    }


def bench_colgen_parallel() -> Dict[str, object]:
    """Honest jobs>1 numbers for the colgen pricing pool on this machine.

    The ring128 tier is re-solved with ``jobs=1`` and ``jobs=2``; the
    recorded ``parallel_speedup`` is serial-pricing-time / pool-wall, so
    on a single-CPU container it sits near (or below) 1 — the point of
    the record is that the pool path works, stays bit-identical, and the
    chunked ``pool.map`` does not regress the serial path.
    """
    import os

    from repro.collectives import solve_collective

    def solve(jobs):
        g = ring(128, cost=1)
        nodes = g.nodes()
        return solve_collective(ScatterProblem(g, nodes[0], nodes[1:]),
                                backend="auto", cache=False, jobs=jobs)

    out: Dict[str, object] = {
        "cpus": os.cpu_count(),
        "note": "single-CPU container: compare jobs1 vs jobs2 *wall* "
                "times for the honest cost of the pool (expect a modest "
                "overhead, no win without parallel hardware); the "
                "in-worker parallel_speedup ratio inflates under "
                "timesharing because per-task serial times are measured "
                "inside concurrently-scheduled workers.  The record pins "
                "jobs-invariance of the optimum and the chunked pricing "
                "path",
    }
    base = None
    for jobs in (1, 2):
        t0 = time.perf_counter()
        sol = solve(jobs)
        wall = time.perf_counter() - t0
        stats = sol.lp_solution.stats
        assert stats.get("engine") == "colgen"
        if base is None:
            base = sol.throughput
        assert sol.throughput == base, "colgen optimum depends on jobs"
        out[f"jobs{jobs}"] = {
            "solve_s": round(wall, 5),
            "pricing_s": round(stats.get("pricing_s") or 0, 5),
            "pricing_chunk": stats.get("pricing_chunk"),
            "parallel_speedup": round(stats.get("parallel_speedup") or 0, 3),
            "columns_digest": stats.get("columns_digest"),
        }
    assert out["jobs1"]["columns_digest"] == out["jobs2"]["columns_digest"], \
        "colgen column admission depends on worker count"
    return out


def run_sim() -> Dict[str, object]:
    cases: Dict[str, object] = {}

    sched, supplies, build_s = _sim_cluster1025()
    cases["cluster1025_scatter"] = bench_sim_pair(
        "cluster1025_scatter", sched, supplies, periods=100)
    cases["cluster1025_scatter"]["schedule_build_s"] = round(build_s, 5)

    # the ring pipeline fills after ~126 periods (64-hop far side at
    # fractional rates), so 250 periods shows real steady-state ops
    sched, supplies = _sim_solved_schedule("ring128")
    cases["ring128_scatter_replay"] = bench_sim_pair(
        "ring128_scatter_replay", sched, supplies, periods=250)

    # the million-slot rung: ~3400 periods x ~300 slot transfers; the
    # reference side is capped (its full run is minutes-scale)
    sched, supplies = _sim_solved_schedule("fattree6")
    transfers = sum(len(s.transfers) for s in sched.slots)
    periods = -(-1_000_000 // transfers)
    cases["fattree6_scatter_million_slot"] = bench_sim_pair(
        "fattree6_scatter_million_slot", sched, supplies, periods=periods,
        reference_periods=200)

    cases["fig9_8host_allreduce_pipelined_replay"] = \
        bench_sim_reference_only("fig9_8host_allreduce_pipelined_replay",
                                 periods=60)

    return {
        "meta": {
            "pr": 9,
            "description": "compiled simulation engine (schedules lowered "
                           "to dense numpy slot tables, counts-only replay "
                           "with transition memoization) vs the per-instance "
                           "reference executor; bit-identical delivery "
                           "times/counts and throughput asserted on every "
                           "tier; speedup_x is per-period wall ratio",
            "python": _platform.python_version(),
            "machine": _platform.machine(),
        },
        "sim_cases": cases,
        "colgen_parallel": bench_colgen_parallel(),
    }


def write_sim_report(path: Path = SIM_PATH) -> Dict[str, object]:
    report = run_sim()
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report


# ----------------------------------------------------------------------
# PR 10: optimality-gap auto-tuner over the topology zoo
# ----------------------------------------------------------------------
def run_tune() -> Dict[str, object]:
    """Run the standing tuner zoo and record every gap row exactly.

    Rationals are stored as strings (``"31/7"``) so the committed record
    is bit-exact; the perf guards re-derive the Fractions.
    """
    from repro.tune import tune_zoo

    t0 = time.perf_counter()
    report = tune_zoo()
    zoo_s = time.perf_counter() - t0
    rows: Dict[str, object] = {}
    for r in report.rows:
        rows[f"{r.topology}:{r.collective}:{r.baseline}"] = {
            "topology": r.topology,
            "collective": r.collective,
            "baseline": r.baseline,
            "algorithm": r.algorithm,
            "rounds": r.n_rounds,
            "baseline_tp": str(r.baseline_tp),
            "lp_tp": str(r.lp_tp),
            "gap": str(r.gap),
            "gap_x": round(float(r.gap), 4),
            "sim_matches": r.sim_matches,
            "engine": r.engine,
        }
    assert report.lp_dominates, "LP beaten by a classical baseline"
    assert report.sim_exact, "simulated rate != analytic rate"
    return {
        "meta": {
            "pr": 10,
            "description": "optimality-gap auto-tuner: exact LP optimum vs "
                           "classical baseline specs (ring/halving "
                           "reduce-scatter, ring/doubling all-gather, "
                           "ring/Rabenseifner all-reduce, direct scatter) "
                           "over the topology zoo; every baseline replayed "
                           "on the sim engine with bit-exact rate match",
            "python": _platform.python_version(),
            "machine": _platform.machine(),
        },
        "zoo_s": round(zoo_s, 4),
        "instance_seconds": {k: round(v, 5)
                             for k, v in report.instance_seconds.items()},
        "gap_rows": rows,
    }


def write_tune_report(path: Path = TUNE_PATH) -> Dict[str, object]:
    report = run_tune()
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _x20_edge():
    from repro.platform.generators import heterogenize, random_connected

    g = heterogenize(random_connected(20, extra_edges=24, seed=5), 9)
    e = next(iter(g.edges()))
    return e.src, e.dst


def bench_replan(name: str, case: Callable[[], tuple],
                 repeats: int = 3) -> Dict[str, object]:
    """Time one warm incremental re-solve against its cold twin.

    Best-of-``repeats`` on both sides: the millisecond-scale paper tiers
    would otherwise report scheduler noise as a warm win or loss.  The
    slow tier (``x20``) only gets one cold run — its cold solve is
    seconds-scale and far from the noise floor.
    """
    from repro.lp.resolve import replan

    sol, events = case()
    report = replan(sol, events, compare=True)
    assert report.throughput == report.cold_solution.throughput, \
        f"{name}: warm and cold replan disagree"
    replan_s, cold_s = report.replan_s, report.cold_s
    for _ in range(repeats - 1):
        if cold_s > 1.0:
            break
        again = replan(sol, events, compare=True)
        assert again.throughput == report.throughput
        replan_s = min(replan_s, again.replan_s)
        cold_s = min(cold_s, again.cold_s)
    return {
        "events": report.delta.describe(),
        "warm": report.warm,
        "replan_s": round(replan_s, 5),
        "cold_s": round(cold_s, 5),
        "speedup_x": round(cold_s / replan_s, 2),
        "tp_before": str(report.base_throughput),
        "tp_after": str(report.throughput),
    }


def run_replan() -> Dict[str, object]:
    cases = {name: bench_replan(name, case)
             for name, case in _replan_cases().items()}
    return {
        "meta": {
            "pr": 6,
            "description": "warm-started incremental re-solve after a "
                           "platform perturbation (repro.lp.resolve.replan, "
                           "compare=True) vs a cold solve of the same "
                           "perturbed problem; both exact, bit-identical "
                           "optima asserted",
            "python": _platform.python_version(),
            "machine": _platform.machine(),
        },
        "replan_cases": cases,
    }


def write_replan_report(path: Path = REPLAN_PATH) -> Dict[str, object]:
    report = run_replan()
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _time(fn: Callable[[], object]) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def bench_case(name: str, build: Callable[[], LinearProgram],
               pr1_cases: Dict[str, dict]) -> Dict[str, object]:
    """Time build + presolve + exact solve + postsolve (cold, no cache)."""
    t0 = time.perf_counter()
    lp = build()
    build_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    pr = presolve(lp)
    presolve_s = time.perf_counter() - t0
    if pr.infeasible:
        raise RuntimeError(f"{name}: presolve claims infeasible")

    t0 = time.perf_counter()
    sol = ExactSimplexSolver().solve(pr.lp)
    solve_s = time.perf_counter() - t0
    if not sol.optimal:
        raise RuntimeError(f"{name}: exact solve failed: {sol.status}")

    t0 = time.perf_counter()
    values = pr.postsolve.values(sol.values)
    objective = lp.objective.evaluate(values)
    postsolve_s = time.perf_counter() - t0

    entry: Dict[str, object] = {
        "vars_raw": lp.num_vars(),
        "constraints": lp.num_constraints(),
        "build_s": round(build_s, 5),
        "presolve_s": round(presolve_s, 5),
        "vars_presolved": pr.lp.num_vars(),
        "presolved_rows": pr.lp.num_constraints(),
        "exact_solve_s": round(presolve_s + solve_s + postsolve_s, 5),
        "iterations": sol.iterations,
        "objective": str(objective),
    }

    before: Optional[float] = None
    pr1 = pr1_cases.get(name)
    if pr1 is not None:
        before = float(pr1["exact_solve_s"])
    elif name in RECORDED_PR1_SECONDS:
        before = RECORDED_PR1_SECONDS[name]
        entry["recorded"] = True
    if before is not None:
        entry["before_exact_solve_s"] = before
        entry["speedup_x"] = round(
            before / max(presolve_s + solve_s + postsolve_s, 1e-9), 1)
    return entry


def bench_model_building() -> Dict[str, object]:
    """Micro-benchmark of expression building (the PR 1 O(n²) hot spot)."""
    lp = LinearProgram("micro")
    xs = [lp.var(f"x{i}") for i in range(3000)]
    lin_sum_s = _time(lambda: lin_sum(xs))
    fig9_build_s = _time(lambda: build_reduce_lp(_fig9_problem()))
    return {
        "lin_sum_3000_terms_s": round(lin_sum_s, 5),
        "fig9_lp_build_s": round(fig9_build_s, 5),
    }


def _var_counts(sol) -> Dict[str, int]:
    """Raw vs presolved var counts of a solved collective's LP(s).

    Reads the counts :func:`repro.lp.dispatch.solve` stamps into every
    ``LPSolution.stats``; a sequential composite has no joint LP, so its
    stage models are summed instead.
    """
    lp_sol = getattr(sol, "lp_solution", None)
    if lp_sol is not None and lp_sol.stats:
        return {"vars_raw": int(lp_sol.stats.get("vars_raw") or 0),
                "vars_presolved":
                    int(lp_sol.stats.get("vars_presolved") or 0)}
    raw = pres = 0
    for sub in getattr(sol, "stage_solutions", None) or ():
        c = _var_counts(sub)
        raw += c["vars_raw"]
        pres += c["vars_presolved"]
    return {"vars_raw": raw, "vars_presolved": pres}


def bench_composite(name: str, solve: Callable[[], object]) -> Dict[str, object]:
    """Time a composed collective's end-to-end exact solve (cold)."""
    t0 = time.perf_counter()
    sol = solve()
    total_s = time.perf_counter() - t0
    entry = {
        "solve_s": round(total_s, 5),
        "throughput": str(sol.throughput),
        "stages": len(sol.stage_solutions or ()),
    }
    entry.update(_var_counts(sol))
    return entry


def run(only: Optional[set] = None) -> Dict[str, object]:
    pr1_cases: Dict[str, dict] = {}
    if PR1_PATH.exists():
        pr1_cases = json.loads(PR1_PATH.read_text()).get("cases", {})
    cases: Dict[str, object] = {}
    for name, build in _cases().items():
        if only is not None and name not in only:
            continue
        cases[name] = bench_case(name, build, pr1_cases)
    composites: Dict[str, object] = {}
    for name, solve in _composite_cases().items():
        if only is not None and name not in only:
            continue
        composites[name] = bench_composite(name, solve)
    return {
        "meta": {
            "pr": 4,
            "description": "LP presolve + indexed fraction-free simplex with "
                           "Devex pricing (before = the PR 1 sparse solver, "
                           "see BENCH_PR1.json); composite_cases time "
                           "composed collectives (all-gather joint LPs are "
                           "regular cases, sequential all-reduce solves end "
                           "to end)",
            "python": _platform.python_version(),
            "machine": _platform.machine(),
        },
        "model_building": bench_model_building(),
        "cases": cases,
        "composite_cases": composites,
    }


def write_report(path: Path = REPORT_PATH,
                 only: Optional[set] = None) -> Dict[str, object]:
    report = run(only=only)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path, default=REPORT_PATH)
    ap.add_argument("--replan", action="store_true",
                    help="benchmark the PR 6 warm-replan tiers and write "
                         "BENCH_PR6.json (leaves BENCH_PR3.json untouched)")
    ap.add_argument("--revised", action="store_true",
                    help="benchmark the PR 7 revised-simplex scale tiers "
                         "and write BENCH_PR7.json")
    ap.add_argument("--colgen", action="store_true",
                    help="benchmark the PR 8 column-generation tiers "
                         "and write BENCH_PR8.json")
    ap.add_argument("--sim", action="store_true",
                    help="benchmark the PR 9 compiled-simulation tiers "
                         "and write BENCH_PR9.json")
    ap.add_argument("--tune", action="store_true",
                    help="run the PR 10 optimality-gap tuner zoo and write "
                         "BENCH_PR10.json")
    args = ap.parse_args()
    if args.tune:
        report = write_tune_report()
        for name, r in report["gap_rows"].items():
            mark = "exact" if r["sim_matches"] else "MISMATCH"
            print(f"{name:>48}: TP {r['baseline_tp']:>6} vs LP "
                  f"{r['lp_tp']:>6}  gap {r['gap']:>6} ({r['gap_x']}x)  "
                  f"sim {mark} [{r['engine']}]")
        print(f"zoo in {report['zoo_s']}s; wrote {TUNE_PATH}")
        return
    if args.sim:
        report = write_sim_report()
        for name, c in report["sim_cases"].items():
            if "speedup_x" in c:
                print(f"{name:>40}: compiled {c['compiled_s']:>8}s "
                      f"({c['periods']}p)  reference {c['reference_s']:>8}s "
                      f"({c['reference_periods']}p)  ({c['speedup_x']}x)")
            else:
                print(f"{name:>40}: {c['replay_s']:>8}s "
                      f"({c['periods']}p)  [{c['engine']} engine]")
        par = report["colgen_parallel"]
        print(f"{'colgen_parallel(ring128)':>40}: jobs1 "
              f"{par['jobs1']['solve_s']}s  jobs2 {par['jobs2']['solve_s']}s"
              f"  (pool speedup {par['jobs2']['parallel_speedup']})")
        print(f"wrote {SIM_PATH}")
        return
    if args.colgen:
        report = write_colgen_report()
        for name, c in report["colgen_cases"].items():
            speed = f"  ({c['speedup_x']}x)" if "speedup_x" in c else ""
            print(f"{name:>32}: {c['solve_s']:>8}s  TP {c['throughput']:>8}"
                  f"  {c['rounds']} rounds  {c['columns']} cols{speed}")
        print(f"wrote {COLGEN_PATH}")
        return
    if args.revised:
        report = write_revised_report()
        for name, c in report["revised_cases"].items():
            print(f"{name:>32}: {c['solve_s']:>8}s  TP {c['throughput']:>8}"
                  f"  {c.get('path', '?')}  {c.get('pivots', '?')} pivots")
        print(f"wrote {REVISED_PATH}")
        return
    if args.replan:
        report = write_replan_report()
        for name, c in report["replan_cases"].items():
            path = "warm" if c["warm"] else "cold"
            print(f"{name:>28}: {path}  replan {c['replan_s']:>8}s  "
                  f"cold {c['cold_s']:>8}s  ({c['speedup_x']}x)  "
                  f"TP {c['tp_before']} -> {c['tp_after']}")
        print(f"wrote {REPLAN_PATH}")
        return
    report = write_report(args.out)
    for name, c in report["cases"].items():
        before = c.get("before_exact_solve_s", "-")
        speed = f"  ({c['speedup_x']}x)" if "speedup_x" in c else ""
        print(f"{name:>20}: {c['vars_raw']:>5} vars -> {c['vars_presolved']:>5}"
              f"  pr1 {before:>8}s  now {c['exact_solve_s']:>8}s{speed}")
    for name, c in report["composite_cases"].items():
        print(f"{name:>20}: {c['stages']:>2} stages  TP {c['throughput']:>8}"
              f"  end-to-end {c['solve_s']:>8}s")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
