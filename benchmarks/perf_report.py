"""Perf-report helper: times the LP hot paths and writes ``BENCH_PR1.json``.

Measures, per case:

- ``build_s`` — LP model construction (the ``lin_sum``/``add_term`` path),
- ``exact_solve_s`` — the sparse fraction-free simplex
  (:class:`repro.lp.exact_simplex.ExactSimplexSolver`), cold, no cache,
- ``dense_solve_s`` — the original dense ``Fraction`` tableau
  (:class:`repro.lp.dense_simplex.DenseSimplexSolver`), i.e. the *before*
  of this PR — only re-measured live where it finishes in a few seconds.

Cases past that horizon carry the dense timing recorded once on the seed
code (same machine as the committed baseline); they are marked
``"recorded": true``.  The Figure 9–12 tier never finished under the dense
solver (killed at 300 s), so its *before* is a lower bound.

Run as a script to (re)generate the committed baseline::

    PYTHONPATH=src python benchmarks/perf_report.py            # fast cases
    PYTHONPATH=src python benchmarks/perf_report.py --full     # + slow dense

``benchmarks/test_perf_lp.py`` drives the same machinery inside the test
suite, and ``tests/perf/test_perf_smoke.py`` guards the committed baseline
against >2× regressions of the fig9-tier exact solve.
"""

from __future__ import annotations

import argparse
import json
import platform as _platform
import time
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.core.reduce_op import ReduceProblem, build_reduce_lp
from repro.core.scatter import ScatterProblem, build_scatter_lp
from repro.lp.dense_simplex import DenseSimplexSolver
from repro.lp.exact_simplex import ExactSimplexSolver
from repro.lp.model import LinearProgram, lin_sum
from repro.platform.examples import (
    figure2_platform, figure2_targets, figure6_platform,
    figure9_participants, figure9_platform, figure9_target,
)
from repro.platform.generators import complete, ring

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR1.json"

#: Dense-solver (pre-PR) timings measured once on the seed code, on the
#: same machine that produced the committed baseline.  Cases cheap enough
#: to re-measure live are NOT listed here.
RECORDED_DENSE_SECONDS = {
    "complete5_reduce": 14.29,
    "complete6_reduce": 152.59,
    # killed after 300 s without finishing phase 1 — a lower bound
    "fig9_reduce": 300.0,
    "ring24_scatter": 124.07,
}

#: Cases whose recorded "before" is a timeout lower bound, not a finish.
DENSE_LOWER_BOUNDS = {"fig9_reduce"}


def _fig9_problem() -> ReduceProblem:
    return ReduceProblem(figure9_platform(), participants=figure9_participants(),
                         target=figure9_target(), msg_size=10, task_work=10)


def _cases() -> Dict[str, Callable[[], LinearProgram]]:
    """name -> LP builder.  Paper-scale cases first, then 5–10× scaled."""
    def fig2_scatter():
        g = figure2_platform()
        return build_scatter_lp(ScatterProblem(g, "Ps", figure2_targets()))

    def fig6_reduce():
        return build_reduce_lp(ReduceProblem(figure6_platform(), [0, 1, 2], 0))

    def fig9_reduce():
        return build_reduce_lp(_fig9_problem())

    def complete_reduce(n):
        g = complete(n, cost=1)
        return build_reduce_lp(ReduceProblem(g, g.nodes(), g.nodes()[0]))

    def ring24_scatter():
        # ~10× the Figure 2 scatter: 24-node ring, all non-sources targets
        g = ring(24, cost=1)
        nodes = g.nodes()
        return build_scatter_lp(ScatterProblem(g, nodes[0], nodes[1:]))

    return {
        "fig2_scatter": fig2_scatter,
        "fig6_reduce": fig6_reduce,
        "complete5_reduce": lambda: complete_reduce(5),
        "complete6_reduce": lambda: complete_reduce(6),
        "ring24_scatter": ring24_scatter,
        "fig9_reduce": fig9_reduce,
    }


def _time(fn: Callable[[], object]) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def bench_case(name: str, build: Callable[[], LinearProgram],
               dense_budget_s: float = 2.5) -> Dict[str, object]:
    """Time build + exact solve; dense solve only if its recorded/expected
    cost fits ``dense_budget_s`` (pass ``float('inf')`` to force it)."""
    t0 = time.perf_counter()
    lp = build()
    build_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    sol = ExactSimplexSolver().solve(lp)
    exact_s = time.perf_counter() - t0
    if not sol.optimal:
        raise RuntimeError(f"{name}: exact solve failed: {sol.status}")

    entry: Dict[str, object] = {
        "vars": lp.num_vars(),
        "constraints": lp.num_constraints(),
        "build_s": round(build_s, 5),
        "exact_solve_s": round(exact_s, 5),
        "iterations": sol.iterations,
        "objective": str(sol.objective),
    }

    recorded = RECORDED_DENSE_SECONDS.get(name)
    if recorded is not None and recorded > dense_budget_s:
        entry["dense_solve_s"] = recorded
        entry["recorded"] = True
        if name in DENSE_LOWER_BOUNDS:
            entry["dense_lower_bound"] = True
    else:
        dense_sol = None
        t0 = time.perf_counter()
        dense_sol = DenseSimplexSolver().solve(build())
        entry["dense_solve_s"] = round(time.perf_counter() - t0, 5)
        if dense_sol.objective != sol.objective:
            raise RuntimeError(f"{name}: dense/exact objective mismatch")
    entry["speedup_x"] = round(
        float(entry["dense_solve_s"]) / max(exact_s, 1e-9), 1)
    return entry


def bench_model_building() -> Dict[str, object]:
    """Micro-benchmark of expression building (the old O(n²) hot spot)."""
    lp = LinearProgram("micro")
    xs = [lp.var(f"x{i}") for i in range(3000)]
    lin_sum_s = _time(lambda: lin_sum(xs))
    fig9_build_s = _time(lambda: build_reduce_lp(_fig9_problem()))
    return {
        "lin_sum_3000_terms_s": round(lin_sum_s, 5),
        # measured on the seed code (copy-per-+= lin_sum): 0.063 s
        "lin_sum_3000_terms_before_s": 0.063,
        "fig9_lp_build_s": round(fig9_build_s, 5),
        # measured on the seed code: 0.179 s
        "fig9_lp_build_before_s": 0.179,
    }


def run(full: bool = False,
        only: Optional[set] = None) -> Dict[str, object]:
    budget = float("inf") if full else 2.5
    cases: Dict[str, object] = {}
    for name, build in _cases().items():
        if only is not None and name not in only:
            continue
        cases[name] = bench_case(name, build, dense_budget_s=budget)
    return {
        "meta": {
            "pr": 1,
            "description": "sparse fraction-free exact simplex + linear-time "
                           "model building (before = dense Fraction tableau)",
            "python": _platform.python_version(),
            "machine": _platform.machine(),
            "full_dense_remeasure": full,
        },
        "model_building": bench_model_building(),
        "cases": cases,
    }


def write_report(path: Path = REPORT_PATH, full: bool = False) -> Dict[str, object]:
    report = run(full=full)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--full", action="store_true",
                    help="re-measure the dense solver even on slow cases")
    ap.add_argument("--out", type=Path, default=REPORT_PATH)
    args = ap.parse_args()
    report = write_report(args.out, full=args.full)
    for name, c in report["cases"].items():
        lb = " (lower bound)" if c.get("dense_lower_bound") else ""
        print(f"{name:>18}: {c['vars']:>5} vars  "
              f"dense {c['dense_solve_s']:>8}s{lb}  "
              f"exact {c['exact_solve_s']:>8}s  ({c['speedup_x']}x)")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
