"""Benchmark harness support.

Every benchmark appends paper-vs-measured rows via the ``report`` fixture;
they are printed in the terminal summary so that
``pytest benchmarks/ --benchmark-only`` shows both the timing table and the
reproduction record (the same rows land in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import List

import pytest

_REPORT: List[str] = []


class Reporter:
    def __init__(self, title: str) -> None:
        self.title = title
        self.rows: List[str] = []

    def row(self, label: str, paper: object, measured: object,
            note: str = "") -> None:
        line = f"  {label:<44} paper: {str(paper):<14} measured: {str(measured):<18}"
        if note:
            line += f" [{note}]"
        self.rows.append(line)

    def line(self, text: str) -> None:
        self.rows.append("  " + text)


@pytest.fixture
def report(request):
    rep = Reporter(request.node.nodeid)
    yield rep
    _REPORT.append("")
    _REPORT.append(f"== {rep.title}")
    _REPORT.extend(rep.rows)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORT:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 78)
    terminalreporter.write_line("REPRODUCTION RECORD (paper artifact vs this run)")
    terminalreporter.write_line("=" * 78)
    for line in _REPORT:
        terminalreporter.write_line(line)
