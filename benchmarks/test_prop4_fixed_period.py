"""Proposition 4: the fixed-period approximation converges to the optimum.

``r(T) = floor(w(T) * T_fixed)`` per tree; the throughput loss is bounded by
``card(Trees) / T_fixed``.  We sweep ``T_fixed`` on the Figure 9 instance
and on a synthetic instance with awkward (non-dividing) weights.
"""

from fractions import Fraction

from repro.core.fixed_period import fixed_period_approximation
from repro.core.reduce_op import ReduceProblem, solve_reduce
from repro.core.trees import ReductionTree
from repro.platform.examples import (
    figure9_participants, figure9_platform, figure9_target,
)

PERIODS = (5, 10, 50, 100, 1000)


def test_prop4_fig9_sweep(benchmark, report):
    problem = ReduceProblem(figure9_platform(),
                            participants=figure9_participants(),
                            target=figure9_target(), msg_size=10, task_work=10)
    sol = solve_reduce(problem)
    trees = sol.extract()

    def sweep():
        return [fixed_period_approximation(trees, period=p,
                                           original_throughput=sol.throughput)
                for p in PERIODS]

    results = benchmark(sweep)
    losses = [float(fp.loss) for fp in results]
    bounds = [float(fp.bound) for fp in results]
    report.row("Prop 4: T_fixed sweep", list(PERIODS), "")
    report.row("Prop 4: throughput loss per T_fixed", "<= card(Trees)/T",
               [round(l, 5) for l in losses])
    report.row("Prop 4: Proposition-4 bound per T_fixed", "",
               [round(b, 5) for b in bounds])
    for fp in results:
        assert fp.loss_within_bound()
    # weights 1/9 are exact multiples of 1/9, 1/90, ... -> zero loss there
    assert losses[-1] <= bounds[-1]


def test_prop4_awkward_weights_converge(benchmark, report):
    trees = [ReductionTree(weight=Fraction(2, 7), transfers=(), tasks=()),
             ReductionTree(weight=Fraction(3, 11), transfers=(), tasks=()),
             ReductionTree(weight=Fraction(1, 13), transfers=(), tasks=())]
    total = sum(t.weight for t in trees)

    def sweep():
        return [fixed_period_approximation(trees, period=p,
                                           original_throughput=total)
                for p in PERIODS]

    results = benchmark(sweep)
    losses = [float(fp.loss) for fp in results]
    report.row("Prop 4 (awkward 2/7+3/11+1/13): loss per T_fixed",
               "monotone -> 0", [round(l, 6) for l in losses])
    assert all(b >= a - 1e-12 for a, b in zip(losses[1:], losses))  # nonincreasing
    assert losses[-1] < 0.005
    for fp in results:
        assert fp.loss_within_bound()
