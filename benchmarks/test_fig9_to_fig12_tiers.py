"""Figures 9-12: the Tiers-generated experimental platform (Section 4.7).

- Figure 9: 14-node Tiers topology, 8 compute hosts (speeds 15..92),
  message size 10, task time 10/s_i, target node 6 (logical index 4).
- Figure 10: the LP optimum — the paper reports **TP = 2/9**.
- Figures 11-12: the solution decomposes into **two reduction trees of
  throughput 1/9 each**.

The link structure is recovered exactly from the figures' printed paths;
bandwidth labels are assigned best-effort from the legible label set (see
``repro.platform.examples``), so matching 2/9 *exactly* is a strong check
that the reconstruction is faithful.
"""

from fractions import Fraction

from repro.baselines.reduce_baselines import best_single_tree_throughput
from repro.core.reduce_op import ReduceProblem, build_reduce_lp, solve_reduce
from repro.core.schedule import build_reduce_schedule
from repro.core.trees import extract_trees
from repro.platform.examples import (
    FIGURE9_SPEEDS, figure9_participants, figure9_platform, figure9_target,
)
from repro.sim.executor import simulate_reduce


def _problem():
    return ReduceProblem(figure9_platform(), participants=figure9_participants(),
                         target=figure9_target(), msg_size=10, task_work=10)


def test_fig9_platform_reconstruction(benchmark, report):
    g = benchmark(figure9_platform)
    report.row("Fig 9: nodes (routers + hosts)", "14 (6 + 8)",
               f"{len(g)} ({len(g.routers())} + {len(g.compute_nodes())})")
    report.row("Fig 9: bidirectional links", 17, g.num_edges() // 2)
    report.row("Fig 9: host speeds", sorted(FIGURE9_SPEEDS.values()),
               sorted(g.speed(h) for h in g.compute_nodes()))
    assert len(g) == 14 and g.num_edges() == 34


def test_fig10_lp_throughput(benchmark, report):
    problem = _problem()
    lp = build_reduce_lp(problem)
    sol = benchmark(lambda: solve_reduce(problem))
    report.row("Fig 10: LP size (vars, constraints)", "(not reported)",
               f"({lp.num_vars()}, {lp.num_constraints()})")
    report.row("Fig 10: steady-state reduce throughput TP", "2/9",
               sol.throughput,
               "exact match despite best-effort bandwidth assignment")
    assert sol.throughput == Fraction(2, 9)
    assert sol.verify(tol=0 if sol.exact else 1e-7) == []


def test_fig11_12_trees(benchmark, report):
    # canonical=True: the tree decomposition is a property of the optimal
    # vertex, and the lex-smallest vertex is pinned under any pricing
    # rule.  The paper's Figure 11/12 presents a two-tree optimal vertex
    # (1/9 each); the canonical vertex concentrates into one 2/9 tree —
    # both are optimal mixes, and the weights always sum to TP.
    sol = solve_reduce(_problem(), canonical=True)
    trees = benchmark(lambda: extract_trees(sol))
    report.row("Fig 11/12: reduction-tree weights sum to TP", "2/9",
               str(sum(Fraction(t.weight) for t in trees)))
    report.row("Fig 11/12: canonical-vertex decomposition", "one 2/9 tree",
               [str(Fraction(t.weight)) for t in trees],
               "the paper's two-1/9-tree layout is another optimal vertex")
    single, _ = best_single_tree_throughput(trees, sol.problem)
    report.row("Fig 11/12: best single tree alone", "<= 2/9", single)
    assert sum(Fraction(t.weight) for t in trees) == Fraction(2, 9)
    assert [Fraction(t.weight) for t in trees] == [Fraction(2, 9)]
    assert single <= Fraction(2, 9)


def test_fig9_schedule_simulation(benchmark, report):
    problem = _problem()
    sol = solve_reduce(problem)
    sched = build_reduce_schedule(sol)
    res = benchmark(lambda: simulate_reduce(sched, problem, n_periods=120,
                                            record_trace=False))
    bound = float(sol.throughput) * float(res.horizon)
    report.row("Fig 9-12: simulated ops / TP*K over 120 periods",
               "-> 1 as K grows", round(res.completed_ops() / bound, 3))
    report.row("Fig 9-12: correctness / one-port violations", "0",
               len(res.errors) + len(res.one_port_violations))
    assert res.errors == []
    assert res.completed_ops() >= 0.7 * bound
