"""Propositions 1-3: asymptotic optimality of the steady-state schedules.

Lemma 1 bounds any schedule by ``opt(G, K) <= TP(G) * K``; the periodic
construction achieves ``steady(G, K) / opt(G, K) -> 1``.  We replay each
schedule over growing horizons and report the ratio series — it must be
nondecreasing toward 1 and never exceed the bound.
"""

from repro.core.gossip import GossipProblem, build_gossip_schedule, solve_gossip
from repro.core.optimality import is_monotone_nondecreasing, upper_bound_ops
from repro.core.reduce_op import ReduceProblem, solve_reduce
from repro.core.scatter import ScatterProblem, build_scatter_schedule, solve_scatter
from repro.core.schedule import build_reduce_schedule
from repro.platform.examples import (
    figure2_platform, figure2_targets, figure6_platform,
)
from repro.platform.generators import complete
from repro.sim.executor import simulate_gossip, simulate_reduce, simulate_scatter

HORIZON_PERIODS = (5, 10, 20, 40, 80)


def _ratio_series(sched, problem, simulate, throughput):
    ratios = []
    for periods in HORIZON_PERIODS:
        res = simulate(sched, problem, n_periods=periods, record_trace=False)
        bound = upper_bound_ops(throughput, res.horizon)
        assert res.completed_ops() <= bound + 1e-9, "Lemma 1 violated"
        ratios.append(res.completed_ops() / bound if bound else 0.0)
    return ratios


def test_prop1_scatter_asymptotic(benchmark, report):
    problem = ScatterProblem(figure2_platform(), "Ps", figure2_targets())
    sol = solve_scatter(problem, backend="exact")
    sched = build_scatter_schedule(sol)
    ratios = benchmark(lambda: _ratio_series(sched, problem, simulate_scatter,
                                             sol.throughput))
    report.row("Prop 1: steady/opt ratio over K = 5..80 periods", "-> 1",
               [round(r, 3) for r in ratios])
    assert is_monotone_nondecreasing(ratios, slack=1e-6)
    assert ratios[-1] > 0.95


def test_prop2_gossip_asymptotic(benchmark, report):
    g = complete(3, cost=1)
    nodes = g.nodes()
    problem = GossipProblem(g, nodes, nodes)
    sol = solve_gossip(problem, backend="exact")
    sched = build_gossip_schedule(sol)
    ratios = benchmark(lambda: _ratio_series(sched, problem, simulate_gossip,
                                             sol.throughput))
    report.row("Prop 2: gossip TP on K3 (all-to-all)", "(not reported)",
               sol.throughput)
    report.row("Prop 2: steady/opt ratio over K = 5..80 periods", "-> 1",
               [round(r, 3) for r in ratios])
    assert is_monotone_nondecreasing(ratios, slack=1e-6)
    assert ratios[-1] > 0.9


def test_prop3_reduce_asymptotic(benchmark, report):
    problem = ReduceProblem(figure6_platform(), participants=[0, 1, 2],
                            target=0)
    sol = solve_reduce(problem, backend="exact")
    sched = build_reduce_schedule(sol)
    ratios = benchmark(lambda: _ratio_series(sched, problem, simulate_reduce,
                                             sol.throughput))
    report.row("Prop 3: steady/opt ratio over K = 5..80 periods", "-> 1",
               [round(r, 3) for r in ratios])
    assert is_monotone_nondecreasing(ratios, slack=1e-6)
    assert ratios[-1] > 0.9
