"""PR 1 perf benchmark: LP solver/model hot paths, writes ``BENCH_PR1.json``.

Seeds the repo's perf trajectory: the headline is the sparse fraction-free
exact simplex replacing the dense Fraction tableau — ≥10× on every
paper-tier platform (the Figure 9–12 tier never *finished* under the dense
solver; its "before" is a 300 s lower bound) — plus linear-time model
building and the raised exact-dispatch limit (the fig9 tier's 1894-variable
LP now solves exactly in-process).

The committed ``BENCH_PR1.json`` doubles as the regression baseline for
``tests/perf/test_perf_smoke.py``.
"""

from fractions import Fraction

import perf_report

from repro.lp import dispatch
from repro.lp.exact_simplex import ExactSimplexSolver


def test_perf_lp_report(benchmark, report):
    rep = perf_report.write_report()
    cases = rep["cases"]

    fig9 = cases["fig9_reduce"]
    # the fig9 tier (and every >=1000-var case) must fit the default
    # exact dispatch limit, and the exact optimum must be the paper's 2/9
    assert fig9["vars"] >= 1000
    assert fig9["vars"] <= dispatch.EXACT_VAR_LIMIT
    assert Fraction(fig9["objective"]) == Fraction(2, 9)
    assert cases["ring24_scatter"]["vars"] >= 1000

    # >=10x on the exact solves of the paper-tier platforms
    for name in ("complete5_reduce", "complete6_reduce", "fig9_reduce"):
        assert cases[name]["speedup_x"] >= 10, (name, cases[name])

    # model building is linear now: summing 3000 terms is sub-millisecond
    mb = rep["model_building"]
    assert mb["lin_sum_3000_terms_s"] < mb["lin_sum_3000_terms_before_s"]

    for name, c in cases.items():
        lb = " (lower bound)" if c.get("dense_lower_bound") else ""
        report.row(f"PR1: {name} ({c['vars']} vars) dense->sparse",
                   ">=10x on paper tiers",
                   f"{c['dense_solve_s']}s{lb} -> {c['exact_solve_s']}s "
                   f"({c['speedup_x']}x)")
    report.row("PR1: lin_sum 3000 terms", "(not in paper)",
               f"{mb['lin_sum_3000_terms_before_s']}s -> "
               f"{mb['lin_sum_3000_terms_s']}s")
    report.line(f"PR1: baseline written to {perf_report.REPORT_PATH.name}; "
                "tests/perf/test_perf_smoke.py fails on >2x regressions.")

    # timed headline: cold exact solve of the fig9-tier LP
    lp = perf_report._cases()["fig9_reduce"]()
    benchmark(lambda: ExactSimplexSolver().solve(lp))
