"""PR 3 perf benchmark: the presolved exact-LP path, writes
``BENCH_PR3.json``.

The headline is LP presolve (dominated/duplicate one-port rows vanish)
plus the reworked simplex — exact column index, feasible-crash phase 1
with Markowitz basis repair, partial pricing and Devex weights.  The fig9
tier runs ≥2× faster than the PR 1 solver, ``complete7_reduce`` drops
from ~4 minutes (Dantzig thrashing a degenerate face) to well under a
second, and ``ring48_scatter`` (4419 vars) moves inside the exact
dispatch limit (2000 → 5000) for the first time.

The committed ``BENCH_PR3.json`` doubles as the regression baseline for
``tests/perf/test_perf_smoke.py``; ``BENCH_PR1.json`` stays frozen as the
PR 1 (dense → sparse) record.
"""

import os
from fractions import Fraction

import perf_report

from repro.lp import dispatch
from repro.lp.exact_simplex import ExactSimplexSolver
from repro.lp.presolve import presolve


def test_perf_lp_report(benchmark, report, tmp_path):
    # measure into a scratch file: the committed BENCH_PR3.json is the
    # quiet-machine baseline the smoke test guards, and rewriting it
    # under full-suite load would poison it with noisy timings
    rep = perf_report.write_report(tmp_path / "BENCH_PR3.json")
    cases = rep["cases"]

    fig9 = cases["fig9_reduce"]
    assert Fraction(fig9["objective"]) == Fraction(2, 9)
    assert fig9["vars_raw"] <= dispatch.EXACT_VAR_LIMIT

    # the ring48 tier only exists on the exact path because of the raised
    # limit: beyond the old 2000, inside the new 5000
    ring48 = cases["ring48_scatter"]
    assert 2000 < ring48["vars_raw"] <= dispatch.EXACT_VAR_LIMIT

    # presolve must bite on every collective LP (the one-port structure
    # guarantees dominated/duplicate rows)
    for name, c in cases.items():
        assert c["presolved_rows"] < c["constraints"], (name, c)

    # live sanity bounds with wide margins (this run may share the box
    # with the rest of the suite; "before" values are baseline-machine,
    # so honour REPRO_PERF_FACTOR like the smoke guard does): the strict
    # fig9 2×-vs-PR1 acceptance bar is pinned on the committed baselines
    # by tests/perf/test_perf_smoke.py, same machine for both
    factor = max(1.0, float(os.environ.get("REPRO_PERF_FACTOR", "1") or 1))
    assert fig9["speedup_x"] >= 1.2 / factor, fig9
    assert cases["complete7_reduce"]["speedup_x"] >= 50, \
        cases["complete7_reduce"]
    assert cases["complete7_reduce"]["exact_solve_s"] < 30
    assert ring48["exact_solve_s"] < 30

    for name, c in cases.items():
        before = c.get("before_exact_solve_s", "-")
        speed = f" ({c['speedup_x']}x)" if "speedup_x" in c else ""
        report.row(f"PR3: {name} ({c['vars_raw']}->{c['vars_presolved']} vars)",
                   "fig9 >= 2x vs PR1",
                   f"{before}s -> {c['exact_solve_s']}s{speed}")
    report.line(f"PR3: baseline written to {perf_report.REPORT_PATH.name}; "
                "tests/perf/test_perf_smoke.py fails on >2x regressions.")

    # timed headline: cold presolve + exact solve of the fig9-tier LP
    lp = perf_report._cases()["fig9_reduce"]()
    benchmark(lambda: ExactSimplexSolver().solve(presolve(lp).lp))
