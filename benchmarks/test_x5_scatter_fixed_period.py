"""X5: Proposition 4 applied to scatter path flows.

Section 4.6 is stated for reduce trees; the same rounding applies verbatim
to the per-target *path* decomposition of a scatter solution, and doubles as
the bridge from float (HiGHS) LP solutions to exact periodic schedules.
"""

from repro.core.scatter import (
    ScatterProblem, build_scatter_schedule_fixed_period, solve_scatter,
)
from repro.platform.generators import clustered
from repro.sim.executor import simulate_scatter

PERIODS = (10, 100, 1000)


def test_x5_scatter_fixed_period_sweep(benchmark, report):
    g = clustered(3, 2, seed=4)
    hosts = g.compute_nodes()
    problem = ScatterProblem(g, hosts[0], hosts[1:5])
    sol = solve_scatter(problem, backend="highs")

    def sweep():
        return [build_scatter_schedule_fixed_period(sol, p) for p in PERIODS]

    results = benchmark(sweep)
    losses = [float(fp.loss) for _s, fp in results]
    report.row("X5: scatter LP optimum (float solve)", "(instance-specific)",
               round(float(sol.throughput), 5))
    report.row("X5: fixed-period loss at T = 10/100/1000",
               "<= card(paths)/T, -> 0", [round(l, 5) for l in losses])
    for sched, fp in results:
        assert fp.loss_within_bound()
        assert sched.validate() == []
    sched, fp = results[-1]
    res = simulate_scatter(sched, problem, n_periods=30, record_trace=False)
    assert res.errors == []
    report.row("X5: simulated ops vs rounded bound (30 periods)",
               "-> 1 as K grows",
               round(res.completed_ops() /
                     (float(fp.throughput) * float(res.horizon)), 3))
