"""X1/X2: steady-state LP vs classical baselines, and the two ablations the
paper's examples motivate.

X1 — who wins: the LP schedule's measured throughput against direct
(store-and-forward) scatter and flat/binary-tree reduce on the paper's
platforms.  The paper's thesis predicts the LP wins or ties everywhere.

X2 — why it wins: (a) multi-route vs single shortest-path-tree routing for
scatter; (b) multi-tree mixing vs the best single reduction tree for
reduce (Figures 11-12's two trees).
"""

from fractions import Fraction

from repro.baselines.reduce_baselines import (
    best_single_tree_throughput, binary_tree_reduce, flat_tree_reduce,
)
from repro.baselines.scatter_baselines import direct_scatter, spt_scatter_throughput
from repro.core.reduce_op import ReduceProblem, solve_reduce
from repro.core.scatter import ScatterProblem, build_scatter_schedule, solve_scatter
from repro.core.schedule import build_reduce_schedule
from repro.platform.examples import (
    figure2_platform, figure2_targets, figure6_platform,
    figure9_participants, figure9_platform, figure9_target,
)
from repro.platform.graph import PlatformGraph
from repro.sim.executor import simulate_reduce, simulate_scatter


def test_x1_scatter_lp_vs_direct(benchmark, report):
    problem = ScatterProblem(figure2_platform(), "Ps", figure2_targets())
    sol = solve_scatter(problem, backend="exact")
    sched = build_scatter_schedule(sol)
    lp_run = simulate_scatter(sched, problem, n_periods=60, record_trace=False)
    direct = benchmark(lambda: direct_scatter(problem, n_ops=60,
                                              record_trace=False))
    report.row("X1 scatter (Fig 2): LP steady throughput", "1/2 (optimal)",
               round(float(lp_run.measured_throughput()), 4))
    report.row("X1 scatter (Fig 2): direct store-and-forward", "<= 1/2",
               round(direct.throughput, 4))
    assert direct.throughput <= float(sol.throughput) + 1e-9
    assert lp_run.measured_throughput() >= direct.throughput - 0.02


def test_x1_reduce_lp_vs_trees(benchmark, report):
    problem = ReduceProblem(figure6_platform(), participants=[0, 1, 2],
                            target=0)
    sol = solve_reduce(problem, backend="exact")
    sched = build_reduce_schedule(sol)
    lp_run = simulate_reduce(sched, problem, n_periods=60, record_trace=False)

    def run_baselines():
        return (flat_tree_reduce(problem, n_ops=60, record_trace=False),
                binary_tree_reduce(problem, n_ops=60, record_trace=False))

    flat, binary = benchmark(run_baselines)
    report.row("X1 reduce (Fig 6): LP steady throughput", "1 (optimal)",
               round(float(lp_run.measured_throughput()), 4))
    report.row("X1 reduce (Fig 6): flat tree", "< 1", round(flat.throughput, 4))
    report.row("X1 reduce (Fig 6): binary tree", "<= 1",
               round(binary.throughput, 4))
    assert flat.correct and binary.correct
    assert flat.throughput <= 1 + 1e-9
    assert binary.throughput <= 1 + 1e-9
    assert lp_run.measured_throughput() >= max(flat.throughput,
                                               binary.throughput) - 0.05


def test_x2_multiroute_ablation(benchmark, report):
    # platform where single-route provably loses (relay out-port binds)
    g = PlatformGraph("multiroute")
    for n in ("s", "a", "b", "t1", "t2"):
        g.add_node(n, 1)
    g.add_edge("s", "a", Fraction(1, 4))
    g.add_edge("s", "b", Fraction(1, 4))
    g.add_edge("a", "t1", 1)
    g.add_edge("a", "t2", 1)
    g.add_edge("b", "t2", 3)
    problem = ScatterProblem(g, "s", ["t1", "t2"])
    full = solve_scatter(problem, backend="exact").throughput
    spt = benchmark(lambda: spt_scatter_throughput(problem))
    report.row("X2a: multi-route LP throughput", "3/5", full)
    report.row("X2a: single shortest-path-tree throughput", "1/2", spt)
    report.row("X2a: multi-route speedup", "1.2x",
               f"{float(full / spt):.2f}x")
    assert full == Fraction(3, 5) and spt == Fraction(1, 2)


def test_x2_multitree_ablation(benchmark, report):
    problem = ReduceProblem(figure9_platform(),
                            participants=figure9_participants(),
                            target=figure9_target(), msg_size=10, task_work=10)
    sol = solve_reduce(problem)
    trees = sol.extract()
    single, _tree = benchmark(lambda: best_single_tree_throughput(trees, problem))
    report.row("X2b (Fig 9): optimal multi-tree TP", "2/9", sol.throughput)
    report.row("X2b (Fig 9): best single extracted tree", "< 2/9", single)
    report.row("X2b (Fig 9): multi-tree speedup", "> 1x",
               f"{float(Fraction(sol.throughput) / Fraction(single)):.3f}x")
    assert single < sol.throughput
