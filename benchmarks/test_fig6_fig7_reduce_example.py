"""Figures 6-7: the 3-processor Series-of-Reduces example.

- Figure 6: triangle platform (unit links, node 0 twice as fast), target
  node 0; the paper's LP gives period T = 3 with 3 reductions per period,
  i.e. TP = 1 after pipelining (Figure 6e).
- Figure 7: the solution decomposes into reduction trees; the paper shows
  two trees with throughputs 1/3 and 2/3 (summing to TP = 1).
"""

from fractions import Fraction

from repro.core import intervals as iv
from repro.core.reduce_op import ReduceProblem, solve_reduce
from repro.core.schedule import build_reduce_schedule
from repro.core.trees import extract_trees, trees_weight_sum
from repro.platform.examples import figure6_platform
from repro.sim.executor import simulate_reduce
from repro.sim.operators import MatMul2x2Mod


def _problem():
    return ReduceProblem(figure6_platform(), participants=[0, 1, 2], target=0)


def test_fig6_lp_throughput(benchmark, report):
    problem = _problem()
    sol = benchmark(lambda: solve_reduce(problem, backend="exact", canonical=True))
    report.row("Fig 6: steady-state reduce throughput TP", 1, sol.throughput)
    report.row("Fig 6: reductions per 3 time-units", 3, sol.throughput * 3)
    assert sol.throughput == 1
    assert sol.verify() == []


def test_fig6_pipelined_schedule(benchmark, report):
    problem = _problem()
    sol = solve_reduce(problem, backend="exact", canonical=True)
    sched = build_reduce_schedule(sol)
    res = benchmark(lambda: simulate_reduce(sched, problem, n_periods=60,
                                            record_trace=False))
    bound = float(sol.throughput) * float(res.horizon)
    report.row("Fig 6e: simulated ops vs TP*K bound",
               f"{bound:.0f}", res.completed_ops(),
               "difference is the pipeline warm-up only")
    report.row("Fig 6e: non-commutative results correct", "yes",
               "yes" if res.errors == [] else res.errors[:1])
    assert res.errors == []
    assert res.completed_ops() >= 0.9 * bound


def test_fig7_reduction_trees(benchmark, report):
    problem = _problem()
    sol = solve_reduce(problem, backend="exact", canonical=True)
    trees = benchmark(lambda: extract_trees(sol))
    weights = sorted(Fraction(t.weight) for t in trees)
    report.row("Fig 7: tree throughputs sum to TP", 1, trees_weight_sum(trees))
    report.row("Fig 7: tree weights", "[1/3, 2/3]",
               [str(w) for w in weights],
               "the optimum is degenerate; any convex mix achieving TP=1 is valid")
    for tree in trees:
        assert iv.validate_tree_intervals(tree.leaf_intervals(), 3)
        assert len(tree.tasks) == 2  # n-1 merges for n=3
    assert trees_weight_sum(trees) == 1


def test_fig6_matmul_validation(benchmark, report):
    problem = _problem()
    sol = solve_reduce(problem, backend="exact", canonical=True)
    sched = build_reduce_schedule(sol)
    res = benchmark(lambda: simulate_reduce(sched, problem, n_periods=40,
                                            op=MatMul2x2Mod,
                                            record_trace=False))
    report.row("Fig 6: matrix-product operator delivers same count",
               "same as SeqConcat", res.completed_ops())
    assert res.errors == []
